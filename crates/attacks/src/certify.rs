//! Designer-side certification of a locked circuit.
//!
//! Simulation-based validation (`LockedCircuit::verify_equivalence`)
//! samples; this module *proves*, by SAT, that the locked circuit driven
//! with the correct key schedule is equivalent to the original for **all**
//! input sequences up to a bounded number of cycles from reset — and,
//! dually, that a given wrong key provably corrupts some sequence. The
//! unrolled two-circuit instance is lowered through
//! [`CircuitEncoder::encode_unrolled`], the same engine the attacks use,
//! and backs the `cutelock verify` CLI subcommand.

use cutelock_core::{KeyValue, LockedCircuit};
use cutelock_netlist::unroll::{unroll, InitState, KeySharing};
use cutelock_netlist::NetlistError;
use cutelock_sat::equiv::EquivResult;
use cutelock_sat::{Binding, CircuitEncoder, Lit, SatResult};

/// Proves bounded equivalence of `locked` (keys driven by the correct
/// schedule) against its original, for all input sequences of `frames`
/// cycles from reset.
///
/// # Errors
///
/// Propagates unrolling/encoding failures.
///
/// # Panics
///
/// Panics if `frames == 0`.
pub fn prove_locked_equivalence(
    locked: &LockedCircuit,
    frames: usize,
    conflict_budget: Option<u64>,
) -> Result<EquivResult, NetlistError> {
    check_key_feed(locked, frames, conflict_budget, |t| {
        locked.schedule.key_at_cycle(t as u64).clone()
    })
    .map(|r| match r {
        // Equivalent for all sequences = certification success.
        KeyFeedResult::NeverDiffers => EquivResult::Equivalent,
        KeyFeedResult::Differs(cex) => EquivResult::Counterexample(cex),
        KeyFeedResult::Unknown => EquivResult::Unknown,
    })
}

/// Proves that applying `wrong` constantly corrupts *some* input sequence
/// within `frames` cycles (i.e. the lock is not transparent to this key).
///
/// Returns the corrupting input sequence, or `None` when the wrong key is
/// provably transparent within the bound (a red flag for the lock).
///
/// # Errors
///
/// Propagates unrolling/encoding failures.
pub fn prove_wrong_key_corrupts(
    locked: &LockedCircuit,
    wrong: &KeyValue,
    frames: usize,
    conflict_budget: Option<u64>,
) -> Result<Option<Vec<Vec<bool>>>, NetlistError> {
    let r = check_key_feed(locked, frames, conflict_budget, |_| wrong.clone())?;
    Ok(match r {
        KeyFeedResult::Differs(cex) => Some(cex),
        _ => None,
    })
}

enum KeyFeedResult {
    NeverDiffers,
    Differs(Vec<Vec<bool>>),
    Unknown,
}

/// Core check: unroll locked and original, bind the locked key port per
/// frame via `key_of`, share data inputs, and ask for an output difference.
fn check_key_feed(
    locked: &LockedCircuit,
    frames: usize,
    conflict_budget: Option<u64>,
    key_of: impl Fn(usize) -> KeyValue,
) -> Result<KeyFeedResult, NetlistError> {
    assert!(frames > 0);
    let mut enc = CircuitEncoder::new();
    enc.solver.set_conflict_budget(conflict_budget);
    let (ul, cnf_l) = enc.encode_unrolled(
        &locked.netlist,
        frames,
        InitState::FromInit,
        KeySharing::PerFrame,
        &Binding::new(),
    )?;
    // Pin the locked key port to the fed key, frame by frame.
    for (t, keys) in ul.frame_keys.iter().enumerate() {
        let kv = key_of(t);
        enc.pin(&cnf_l.lits(keys), kv.bits());
    }
    // Share the data inputs positionally.
    let uo = unroll(
        &locked.original,
        frames,
        InitState::FromInit,
        KeySharing::Shared,
    )?;
    let mut shared = Binding::new();
    for t in 0..frames {
        shared.bind_all(&uo.frame_inputs[t], &cnf_l.lits(&ul.frame_inputs[t]));
    }
    let cnf_o = enc.encode(&uo.netlist, &shared)?;
    let lo: Vec<Lit> = ul
        .frame_outputs
        .iter()
        .flatten()
        .map(|&o| cnf_l.lit(o))
        .collect();
    let oo: Vec<Lit> = uo
        .frame_outputs
        .iter()
        .flatten()
        .map(|&o| cnf_o.lit(o))
        .collect();
    let diff = enc.differ(&lo, &oo);
    enc.solver.add_clause(&[diff]);
    Ok(match enc.solver.solve() {
        SatResult::Unsat => KeyFeedResult::NeverDiffers,
        SatResult::Unknown => KeyFeedResult::Unknown,
        SatResult::Sat => {
            let cex: Vec<Vec<bool>> = (0..frames)
                .map(|t| enc.values(&cnf_l.lits(&ul.frame_inputs[t])))
                .collect();
            KeyFeedResult::Differs(cex)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cutelock_circuits::s27::s27;
    use cutelock_core::beh::{CuteLockBeh, CuteLockBehConfig, WrongfulPolicy};
    use cutelock_core::str_lock::{CuteLockStr, CuteLockStrConfig};
    use cutelock_fsm::detector::sequence_detector;

    #[test]
    fn str_lock_is_provably_equivalent_on_s27() {
        let locked = CuteLockStr::new(CuteLockStrConfig {
            keys: 4,
            key_bits: 2,
            locked_ffs: 2,
            seed: 44,
            schedule: None,
            ..Default::default()
        })
        .lock(&s27())
        .unwrap();
        // Exhaustive over all 2^(4*10) input sequences of 10 cycles.
        assert_eq!(
            prove_locked_equivalence(&locked, 10, None).unwrap(),
            EquivResult::Equivalent
        );
    }

    #[test]
    fn beh_lock_is_provably_equivalent_on_detector() {
        let locked = CuteLockBeh::new(CuteLockBehConfig {
            keys: 4,
            key_bits: 4,
            wrongful: WrongfulPolicy::RandomTable,
            seed: 45,
            schedule: None,
        })
        .lock(&sequence_detector("1001"))
        .unwrap();
        assert_eq!(
            prove_locked_equivalence(&locked, 8, None).unwrap(),
            EquivResult::Equivalent
        );
    }

    #[test]
    fn wrong_key_provably_corrupts() {
        let locked = CuteLockStr::new(CuteLockStrConfig {
            keys: 4,
            key_bits: 2,
            locked_ffs: 1,
            seed: 46,
            schedule: None,
            ..Default::default()
        })
        .lock(&s27())
        .unwrap();
        let wrong = locked.schedule.key_at_time(0).flipped(0);
        let cex = prove_wrong_key_corrupts(&locked, &wrong, 8, None).unwrap();
        assert!(cex.is_some(), "wrong key must corrupt within 8 cycles");
        // And the correct key value for time 0, applied constantly, must
        // also corrupt (it is wrong at time 1).
        let t0 = locked.schedule.key_at_time(0).clone();
        if locked.schedule.key_at_time(1) != &t0 {
            assert!(prove_wrong_key_corrupts(&locked, &t0, 8, None)
                .unwrap()
                .is_some());
        }
    }
}

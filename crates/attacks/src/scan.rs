//! The shared scan-access miter model under the combinational oracle-guided
//! attacks (SAT, AppSAT, Double-DIP).
//!
//! With scan access the attack target is the full-scan view of the locked
//! netlist; observations are the primary outputs plus the next-state bits
//! of the flip-flops the oracle also has (lock-inserted state elements have
//! no oracle counterpart and stay unobservable). All CNF construction goes
//! through [`MiterBuilder`] — this module only adds the `LockedCircuit`
//! bookkeeping: which flip-flops are shared with the oracle, and how oracle
//! scan queries become pinned constraint frames.

use cutelock_core::LockedCircuit;
use cutelock_netlist::unroll::scan_view;
use cutelock_sat::{Frame, Lit, MiterBuilder, PortVals};
use cutelock_sim::NetlistOracle;

/// For each flip-flop of the *original* circuit (the oracle's scan-chain
/// order), its index in the locked circuit's flip-flop list.
///
/// # Panics
///
/// Panics if locking dropped a functional flip-flop (lock transforms
/// preserve them by contract).
pub(crate) fn shared_ffs(locked: &LockedCircuit) -> Vec<usize> {
    let locked_q: Vec<&str> = locked
        .netlist
        .dffs()
        .iter()
        .map(|ff| locked.netlist.net_name(ff.q()))
        .collect();
    locked
        .original
        .dffs()
        .iter()
        .map(|ff| {
            let name = locked.original.net_name(ff.q());
            locked_q
                .iter()
                .position(|&n| n == name)
                .expect("locking preserves functional flip-flops")
        })
        .collect()
}

/// The two-copy scan miter every combinational oracle-guided attack starts
/// from: private key vectors `k1`/`k2`, shared data (`xs`) and state (`ss`)
/// inputs, and the two encoded copies (`f1`/`f2`) whose observations the
/// DIP hunt compares.
pub(crate) struct ScanModel {
    pub shared_ffs: Vec<usize>,
    pub m: MiterBuilder,
    pub oracle: NetlistOracle,
    pub k1: Vec<Lit>,
    pub k2: Vec<Lit>,
    pub xs: Vec<Lit>,
    pub ss: Vec<Lit>,
    pub f1: Frame,
    pub f2: Frame,
}

impl ScanModel {
    /// Builds the miter, or `None` when the netlist has no key inputs or is
    /// structurally unusable.
    pub fn new(locked: &LockedCircuit, conflict_budget: Option<u64>) -> Option<Self> {
        if locked.netlist.key_inputs().is_empty() {
            return None;
        }
        let sv = scan_view(&locked.netlist).ok()?;
        let oracle = NetlistOracle::new(locked.original.clone()).ok()?;
        let shared = shared_ffs(locked);
        let mut m = MiterBuilder::new(sv, &shared);
        m.enc.solver.set_conflict_budget(conflict_budget);
        let k1 = m.fresh_keys();
        let k2 = m.fresh_keys();
        let xs = m.fresh_data();
        let ss = m.fresh_state();
        let f1 = m
            .frame(&k1, PortVals::Shared(&ss), PortVals::Shared(&xs))
            .ok()?;
        let f2 = m
            .frame(&k2, PortVals::Shared(&ss), PortVals::Shared(&xs))
            .ok()?;
        Some(Self {
            shared_ffs: shared,
            m,
            oracle,
            k1,
            k2,
            xs,
            ss,
            f1,
            f2,
        })
    }

    /// The live incremental solver (scopes, budgets, solving).
    pub fn solver(&mut self) -> &mut cutelock_sat::Solver {
        &mut self.m.enc.solver
    }

    /// Model values of `lits` after a SAT answer.
    pub fn values(&self, lits: &[Lit]) -> Vec<bool> {
        self.m.enc.values(lits)
    }

    /// The miter constraint: some observation of the two copies differs.
    pub fn obs_differ(&mut self) -> Lit {
        let (f1, f2) = (self.f1.clone(), self.f2.clone());
        self.m.obs_differ(&f1, &f2)
    }

    /// Adds a third (or nth) key copy sharing `xs`/`ss`, for Double-DIP.
    pub fn add_key_copy(&mut self) -> (Vec<Lit>, Frame) {
        let keys = self.m.fresh_keys();
        let (ss, xs) = (self.ss.clone(), self.xs.clone());
        let frame = self
            .m
            .frame(&keys, PortVals::Shared(&ss), PortVals::Shared(&xs))
            .expect("scan view encodes");
        (keys, frame)
    }

    /// Queries the oracle on scan pattern `(x, s)` and pins a fresh
    /// constraint copy per key vector in `key_copies` to its answer.
    pub fn constrain_pattern_for(&mut self, key_copies: &[&[Lit]], x: &[bool], s: &[bool]) {
        let s_shared: Vec<bool> = self.shared_ffs.iter().map(|&f| s[f]).collect();
        let (y, s_next) = self.oracle.scan_query(&s_shared, x);
        for &keys in key_copies {
            let f = self
                .m
                .frame(keys, PortVals::Const(s), PortVals::Const(x))
                .expect("scan view encodes");
            self.m.pin_observations(&f, &y, &s_next);
        }
    }

    /// Pins both miter key copies to the oracle's answer on `(x, s)` — the
    /// step after every discriminating input pattern.
    pub fn constrain_pattern(&mut self, x: &[bool], s: &[bool]) {
        let (k1, k2) = (self.k1.clone(), self.k2.clone());
        self.constrain_pattern_for(&[&k1, &k2], x, s);
    }
}

//! The unified attack-request API: one spec type, one entry point.
//!
//! Before this module every attack exposed a base function plus a
//! `*_with(…, &Portfolio)` variant — sixteen entry points a caller had to
//! dispatch between by hand, duplicated across the CLI, the table bins,
//! and (now) the job daemon. [`AttackSpec`] collapses that sprawl: a spec
//! names the [`AttackStrategy`], carries the [`AttackBudget`], and carries
//! the [`Portfolio`], and [`run_attack`] is the **one door** every caller
//! drives attacks through. The `LockedCircuit` argument bundles the locked
//! netlist with its oracle (the original), so a spec plus a circuit fully
//! determines a run.
//!
//! The legacy per-attack free functions survive as one-line delegating
//! wrappers (the golden regression suite pins their outcomes bit-identical
//! through this refactor), and the `*_with` variants remain public for the
//! goldens but are `#[doc(hidden)]` — new code should build a spec.
//!
//! # Example
//!
//! ```
//! use cutelock_attacks::{run_attack, AttackSpec, AttackStrategy};
//! use cutelock_circuits::s27::s27;
//! use cutelock_core::baselines::XorLock;
//!
//! let locked = XorLock::new(4, 3).lock(&s27()).unwrap();
//! let spec = AttackSpec::new(AttackStrategy::ScanSat);
//! let report = run_attack(&locked, &spec);
//! assert!(!report.outcome.defense_held(), "XOR locks fall to the SAT attack");
//! ```

use cutelock_core::LockedCircuit;

use crate::appsat::{appsat_attack_with, double_dip_attack_with, AppSatConfig};
use crate::bmc::{bbo_attack_with, int_attack_with};
use crate::fall::fall_attack_with;
use crate::kc2::kc2_attack_with;
use crate::portfolio::{portfolio_attack_with_stop, Portfolio, RaceReport, Strategy};
use crate::rane::rane_attack_with;
use crate::sat_attack::scan_sat_attack_with;
use crate::{AttackBudget, AttackOutcome, AttackReport};

/// Every attack the unified entry point can run, by CLI/table name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AttackStrategy {
    /// The combinational oracle-guided SAT attack through the scan view
    /// (`sat`).
    ScanSat,
    /// Sequential unrolling, NEOS `bbo` mode (`bbo`).
    Bbo,
    /// Sequential unrolling, NEOS `int` mode (`int`).
    Int,
    /// Key-condition crunching (`kc2`).
    Kc2,
    /// The RANE model: secret initial state (`rane`).
    Rane,
    /// AppSAT approximate attack with the default settle policy
    /// (`appsat`).
    AppSat,
    /// Double-DIP: two wrong keys eliminated per iteration
    /// (`double-dip`).
    DoubleDip,
    /// FALL: structural comparator analysis plus SAT confirmation
    /// (`fall`).
    Fall,
    /// Attack-level race of whole strategies with cooperative
    /// cancellation (`race`); wall-clock layer, see [`run_race`].
    Race,
}

impl AttackStrategy {
    /// Every strategy, in canonical (CLI help) order.
    pub const ALL: [AttackStrategy; 9] = [
        AttackStrategy::ScanSat,
        AttackStrategy::Bbo,
        AttackStrategy::Int,
        AttackStrategy::Kc2,
        AttackStrategy::Rane,
        AttackStrategy::AppSat,
        AttackStrategy::DoubleDip,
        AttackStrategy::Fall,
        AttackStrategy::Race,
    ];

    /// The CLI/table/wire name of this strategy.
    pub fn name(self) -> &'static str {
        match self {
            AttackStrategy::ScanSat => "sat",
            AttackStrategy::Bbo => "bbo",
            AttackStrategy::Int => "int",
            AttackStrategy::Kc2 => "kc2",
            AttackStrategy::Rane => "rane",
            AttackStrategy::AppSat => "appsat",
            AttackStrategy::DoubleDip => "double-dip",
            AttackStrategy::Fall => "fall",
            AttackStrategy::Race => "race",
        }
    }

    /// Parses a CLI/wire mode name (the inverse of
    /// [`AttackStrategy::name`]).
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }

    /// True when two runs with the same spec produce bit-identical
    /// reports. Everything but [`AttackStrategy::Race`] qualifies: the
    /// attack-level race is decided by wall-clock and is documented as
    /// exempt in `docs/DETERMINISM.md`.
    pub fn is_deterministic(self) -> bool {
        self != AttackStrategy::Race
    }
}

impl std::fmt::Display for AttackStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete attack request: which attack, under what budget, raced how.
///
/// This is the request type shared by the CLI subcommands, the table
/// bins, and the `cutelock serve` job daemon — see [`run_attack`].
#[derive(Debug, Clone)]
pub struct AttackSpec {
    /// The attack to run.
    pub strategy: AttackStrategy,
    /// Search budget (wall-clock, bound, iterations, conflicts).
    pub budget: AttackBudget,
    /// Query-level portfolio settings ([`Portfolio::single`] disables
    /// racing). For [`AttackStrategy::Race`] the portfolio is
    /// reinterpreted: `threads` is the strategy-race width and `k` each
    /// strategy's inner query-race width.
    pub portfolio: Portfolio,
    /// Run the netlist simplification engine
    /// ([`cutelock_netlist::simplify()`], state-preserving configuration)
    /// over both the locked netlist and the oracle before attacking.
    ///
    /// Defaults **off** so the legacy wrappers and the frozen golden pins
    /// stay bit-identical; the CLI and the table bins flip it on by
    /// default (escape hatch: `--no-simplify`). Ignored by
    /// [`AttackStrategy::Fall`] (its comparator analysis reads the locked
    /// structure as-built) and [`AttackStrategy::Race`] (already exempt
    /// from determinism pins; its entrants rebuild their own views).
    pub simplify: bool,
}

impl AttackSpec {
    /// A spec with the default budget, no portfolio racing, and no
    /// simplification.
    pub fn new(strategy: AttackStrategy) -> Self {
        Self {
            strategy,
            budget: AttackBudget::default(),
            portfolio: Portfolio::single(),
            simplify: false,
        }
    }

    /// Replaces the budget.
    pub fn with_budget(mut self, budget: AttackBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the portfolio.
    pub fn with_portfolio(mut self, portfolio: Portfolio) -> Self {
        self.portfolio = portfolio;
        self
    }

    /// Sets the simplification switch.
    pub fn with_simplify(mut self, simplify: bool) -> Self {
        self.simplify = simplify;
        self
    }

    /// True when the report's verdict is *decisive*: a verified key (the
    /// lock is broken) or a CNS proof (no constant key exists for this
    /// model). A refuted key, a FAIL, or a timeout settles nothing —
    /// the CLI maps decisive to exit 0 and everything else to exit 2.
    pub fn is_decisive(outcome: &AttackOutcome) -> bool {
        matches!(outcome, AttackOutcome::KeyFound(_) | AttackOutcome::Cns)
    }
}

/// Runs the attack a spec describes against a locked circuit (which
/// bundles its own oracle netlist) — the single entry point behind the
/// CLI `attack` subcommand, the table bins, and the job daemon.
///
/// Semantics per strategy are identical to the legacy free functions
/// (each of which now delegates here bit-for-bit):
///
/// * oracle-guided strategies return the familiar [`AttackReport`];
/// * [`AttackStrategy::Fall`] reports its candidate count in
///   [`AttackReport::iterations`] (use
///   [`fall_attack_with`] when the
///   confirmed key list itself is needed);
/// * [`AttackStrategy::Race`] returns the winning (or best-ranked)
///   strategy's report — see [`run_race`] for the full per-strategy
///   breakdown.
pub fn run_attack(locked: &LockedCircuit, spec: &AttackSpec) -> AttackReport {
    let prepared;
    let locked =
        if spec.simplify && !matches!(spec.strategy, AttackStrategy::Fall | AttackStrategy::Race) {
            prepared = simplify_locked(locked);
            &prepared
        } else {
            locked
        };
    let (budget, p) = (&spec.budget, &spec.portfolio);
    match spec.strategy {
        AttackStrategy::ScanSat => scan_sat_attack_with(locked, budget, p),
        AttackStrategy::Bbo => bbo_attack_with(locked, budget, p),
        AttackStrategy::Int => int_attack_with(locked, budget, p),
        AttackStrategy::Kc2 => kc2_attack_with(locked, budget, p),
        AttackStrategy::Rane => rane_attack_with(locked, budget, p),
        AttackStrategy::AppSat => appsat_attack_with(locked, budget, &AppSatConfig::default(), p),
        AttackStrategy::DoubleDip => double_dip_attack_with(locked, budget, p),
        AttackStrategy::Fall => {
            let r = fall_attack_with(locked, budget, p);
            AttackReport {
                outcome: r.outcome,
                elapsed: r.elapsed,
                iterations: r.candidates,
                bound: 0,
                stats: crate::RunStats::default(),
            }
        }
        AttackStrategy::Race => run_race(locked, spec).report,
    }
}

/// Runs the attack-level strategy race a spec describes and returns the
/// full [`RaceReport`] (per-strategy verdicts included). [`run_attack`]
/// with [`AttackStrategy::Race`] is this function reduced to the winning
/// report.
///
/// The spec's portfolio is reinterpreted for the race:
/// [`Portfolio::threads`] is the number of strategy workers and
/// [`Portfolio::k`] each strategy's inner query-race width — matching the
/// CLI's `--threads` / `--portfolio` flags in `--mode race`. A
/// [`Portfolio::stop`] flag, when set, becomes the race's shared
/// cancellation slot (the job daemon's `CANCEL` raises it).
pub fn run_race(locked: &LockedCircuit, spec: &AttackSpec) -> RaceReport {
    portfolio_attack_with_stop(
        locked,
        &spec.budget,
        &Strategy::ALL,
        spec.portfolio.threads,
        spec.portfolio.k,
        spec.portfolio.stop.clone(),
    )
}

/// Returns a copy of `locked` with both netlists run through the
/// state-preserving netlist simplifier
/// ([`cutelock_netlist::simplify::SimplifyConfig::preserving_state`]) —
/// what [`run_attack`] does when [`AttackSpec::simplify`] is set, exposed
/// for the CLI `verify`/`certify` paths and the bench harness.
///
/// State preservation keeps flip-flop count, order, instance names and
/// q-net names, so [`LockedCircuit::counter_ffs`] / `locked_ffs` indices
/// and the scan model's name-based FF mapping stay valid. Schedule,
/// scheme, and FF index lists are carried over verbatim. A simplifier
/// error (a bug on a valid netlist) falls back to the unsimplified copy
/// rather than failing the attack.
pub fn simplify_locked(locked: &LockedCircuit) -> LockedCircuit {
    let cfg = cutelock_netlist::simplify::SimplifyConfig::preserving_state();
    let run = |nl: &cutelock_netlist::Netlist| match cutelock_netlist::simplify::simplify(nl, &cfg)
    {
        Ok((out, _)) => out,
        Err(_) => nl.clone(),
    };
    LockedCircuit {
        netlist: run(&locked.netlist),
        original: run(&locked.original),
        schedule: locked.schedule.clone(),
        scheme: locked.scheme,
        counter_ffs: locked.counter_ffs.clone(),
        locked_ffs: locked.locked_ffs.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for s in AttackStrategy::ALL {
            assert_eq!(AttackStrategy::parse(s.name()), Some(s), "{s}");
        }
        assert_eq!(AttackStrategy::parse("dana"), None, "dana is not a spec");
        assert_eq!(AttackStrategy::parse(""), None);
    }

    #[test]
    fn race_is_the_one_nondeterministic_strategy() {
        for s in AttackStrategy::ALL {
            assert_eq!(s.is_deterministic(), s != AttackStrategy::Race);
        }
    }

    #[test]
    fn decisive_matches_the_race_rule() {
        use cutelock_core::KeyValue;
        assert!(AttackSpec::is_decisive(&AttackOutcome::KeyFound(
            KeyValue::from_u64(1, 2)
        )));
        assert!(AttackSpec::is_decisive(&AttackOutcome::Cns));
        assert!(!AttackSpec::is_decisive(&AttackOutcome::WrongKey(
            KeyValue::from_u64(1, 2)
        )));
        assert!(!AttackSpec::is_decisive(&AttackOutcome::Fail));
        assert!(!AttackSpec::is_decisive(&AttackOutcome::Timeout));
    }

    #[test]
    fn builders_compose() {
        let spec = AttackSpec::new(AttackStrategy::Int)
            .with_budget(AttackBudget {
                timeout: std::time::Duration::from_secs(5),
                ..AttackBudget::default()
            })
            .with_portfolio(Portfolio::new(4, 2))
            .with_simplify(true);
        assert_eq!(spec.strategy, AttackStrategy::Int);
        assert_eq!(spec.budget.timeout.as_secs(), 5);
        assert_eq!(spec.portfolio.k, 4);
        assert!(spec.simplify);
    }

    #[test]
    fn simplify_defaults_off_for_golden_stability() {
        // The frozen golden pins rely on plain specs encoding the raw
        // netlists; simplification is strictly opt-in at this layer.
        for s in AttackStrategy::ALL {
            assert!(!AttackSpec::new(s).simplify, "{s}");
        }
    }

    #[test]
    fn simplify_locked_preserves_the_attack_interface() {
        use cutelock_circuits::s27::s27;
        use cutelock_core::str_lock::{CuteLockStr, CuteLockStrConfig};
        let lc = CuteLockStr::new(CuteLockStrConfig {
            keys: 4,
            key_bits: 2,
            locked_ffs: 1,
            seed: 6,
            schedule: None,
            ..Default::default()
        })
        .lock(&s27())
        .expect("locks");
        let simplified = simplify_locked(&lc);
        // Interface invariants the attacks depend on.
        assert_eq!(simplified.netlist.input_count(), lc.netlist.input_count());
        assert_eq!(simplified.netlist.output_count(), lc.netlist.output_count());
        assert_eq!(simplified.netlist.dff_count(), lc.netlist.dff_count());
        assert_eq!(simplified.original.dff_count(), lc.original.dff_count());
        assert_eq!(simplified.key_input_ids().len(), lc.key_input_ids().len());
        assert_eq!(simplified.counter_ffs, lc.counter_ffs);
        assert_eq!(simplified.locked_ffs, lc.locked_ffs);
        // FF q-net names survive (the scan model maps state by name).
        for (a, b) in lc.netlist.dffs().iter().zip(simplified.netlist.dffs()) {
            assert_eq!(
                lc.netlist.net_name(a.q()),
                simplified.netlist.net_name(b.q())
            );
        }
        // And the simplified lock still verifies under the correct key.
        assert!(simplified.verify_equivalence(32, 7).unwrap());
    }
}

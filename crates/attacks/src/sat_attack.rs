//! The oracle-guided SAT attack (Subramanyan et al., HOST 2015) under the
//! full-scan assumption.
//!
//! With scan access every flip-flop is controllable and observable, so the
//! attack targets the *combinational core*: pseudo-inputs are the flip-flop
//! outputs, pseudo-outputs the flip-flop data inputs. The classic DIP loop
//! then runs on single input patterns instead of sequences.
//!
//! The oracle chip exposes only the **functional** state (the original
//! flip-flops) through its scan chain; state elements added by the lock
//! (the Cute-Lock counter, DK-Lock's mode register) have no oracle
//! counterpart. They remain attacker-controlled pseudo-inputs of the locked
//! model whose next-state is unobservable. This is exactly why Cute-Lock
//! survives even *with* scan access (paper §I): each DIP pins the counter
//! to some time `t` and teaches the attacker that the constant key must
//! equal `schedule[t]` — two DIPs with different times leave no consistent
//! key and the attack ends in [`AttackOutcome::Cns`].

use std::collections::HashMap;
use std::time::Instant;

use cutelock_core::{KeyValue, LockedCircuit};
use cutelock_netlist::unroll::scan_view;
use cutelock_netlist::NetId;
use cutelock_sat::{tseitin, Lit, SatResult, Solver};
use cutelock_sim::NetlistOracle;

use crate::encode::{const_lit, model_values};
use crate::outcome::verify_candidate_key;
use crate::{AttackBudget, AttackOutcome, AttackReport};

/// Runs the scan-access oracle-guided SAT attack on `locked`.
pub fn scan_sat_attack(locked: &LockedCircuit, budget: &AttackBudget) -> AttackReport {
    let start = Instant::now();
    let report = |outcome: AttackOutcome, iterations: usize| AttackReport {
        outcome,
        elapsed: start.elapsed(),
        iterations,
        bound: 1,
    };
    let ki = locked.netlist.key_inputs().len();
    if ki == 0 {
        return report(AttackOutcome::Fail, 0);
    }
    let sv = scan_view(&locked.netlist).expect("locked netlist is well-formed");
    let mut oracle = NetlistOracle::new(locked.original.clone()).expect("oracle valid");

    // Shared flip-flops: those whose q-net name exists in the original, in
    // the original's flip-flop order (the oracle's scan-chain order).
    let orig_q: Vec<String> = locked
        .original
        .dffs()
        .iter()
        .map(|ff| locked.original.net_name(ff.q()).to_string())
        .collect();
    let locked_q: Vec<String> = locked
        .netlist
        .dffs()
        .iter()
        .map(|ff| locked.netlist.net_name(ff.q()).to_string())
        .collect();
    // For each original FF, its index in the locked FF list.
    let shared: Vec<usize> = orig_q
        .iter()
        .map(|name| {
            locked_q
                .iter()
                .position(|n| n == name)
                .expect("locking preserves functional flip-flops")
        })
        .collect();

    let data_inputs = locked.netlist.data_inputs();
    let sv_net = |id: NetId| -> NetId {
        sv.netlist
            .find_net(locked.netlist.net_name(id))
            .expect("net present in scan view")
    };

    // One scan-view copy: returns (po lits, shared-next-state lits).
    #[allow(clippy::too_many_arguments)]
    fn encode_copy(
        solver: &mut Solver,
        locked: &LockedCircuit,
        sv: &cutelock_netlist::unroll::ScanView,
        sv_net: &dyn Fn(NetId) -> NetId,
        keys: &[Lit],
        xs: &[Lit],
        states: &[Lit],
        data_inputs: &[NetId],
        shared: &[usize],
    ) -> (Vec<Lit>, Vec<Lit>) {
        let mut map: HashMap<NetId, Lit> = HashMap::new();
        for (&kid, &l) in locked.netlist.key_inputs().iter().zip(keys) {
            map.insert(sv_net(kid), l);
        }
        for (&did, &l) in data_inputs.iter().zip(xs) {
            map.insert(sv_net(did), l);
        }
        for (&sid, &l) in sv.state_inputs.iter().zip(states) {
            map.insert(sid, l);
        }
        let cnf = tseitin::encode(&sv.netlist, solver, &map).expect("combinational");
        let pos: Vec<Lit> = locked
            .netlist
            .outputs()
            .iter()
            .map(|&o| cnf.lit(sv_net(o)))
            .collect();
        let next: Vec<Lit> = shared
            .iter()
            .map(|&f| cnf.lit(sv.next_state_outputs[f]))
            .collect();
        (pos, next)
    }

    let mut solver = Solver::new();
    solver.set_conflict_budget(budget.conflict_budget);
    let k1: Vec<Lit> = (0..ki).map(|_| Lit::positive(solver.new_var())).collect();
    let k2: Vec<Lit> = (0..ki).map(|_| Lit::positive(solver.new_var())).collect();
    let xs: Vec<Lit> = (0..data_inputs.len())
        .map(|_| Lit::positive(solver.new_var()))
        .collect();
    let ss: Vec<Lit> = (0..locked.netlist.dff_count())
        .map(|_| Lit::positive(solver.new_var()))
        .collect();
    let (po1, ns1) = encode_copy(
        &mut solver,
        locked,
        &sv,
        &sv_net,
        &k1,
        &xs,
        &ss,
        &data_inputs,
        &shared,
    );
    let (po2, ns2) = encode_copy(
        &mut solver,
        locked,
        &sv,
        &sv_net,
        &k2,
        &xs,
        &ss,
        &data_inputs,
        &shared,
    );
    let mut obs1 = po1;
    obs1.extend(ns1);
    let mut obs2 = po2;
    obs2.extend(ns2);
    let diff = tseitin::encode_vectors_differ(&mut solver, &obs1, &obs2);
    // The "observations differ" constraint holds only during the DIP hunt:
    // keep it in a retractable scope so the final key-extraction solve runs
    // on the same live solver, unconstrained by the miter.
    solver.push_scope();
    solver.add_scoped_clause(&[diff]);

    let mut iterations = 0usize;
    loop {
        let Some(rem) = budget.remaining(start) else {
            return report(AttackOutcome::Timeout, iterations);
        };
        solver.set_timeout(Some(rem));
        match solver.solve_scoped(&[]) {
            SatResult::Unknown => return report(AttackOutcome::Timeout, iterations),
            SatResult::Unsat => break,
            SatResult::Sat => {
                iterations += 1;
                if iterations > budget.max_iterations {
                    return report(AttackOutcome::Timeout, iterations);
                }
                let x_dip = model_values(&solver, &xs);
                let s_dip = model_values(&solver, &ss);
                let s_shared: Vec<bool> = shared.iter().map(|&f| s_dip[f]).collect();
                // Build the full oracle input vector in the original's
                // declaration order (data inputs only — originals have no
                // keys).
                let (y, s_next) = oracle.scan_query(&s_shared, &x_dip);
                // Constrain both key copies on this pattern.
                for keys in [&k1, &k2] {
                    let xc: Vec<Lit> = x_dip.iter().map(|&b| const_lit(&mut solver, b)).collect();
                    let sc: Vec<Lit> = s_dip.iter().map(|&b| const_lit(&mut solver, b)).collect();
                    let (pos, next) = encode_copy(
                        &mut solver,
                        locked,
                        &sv,
                        &sv_net,
                        keys,
                        &xc,
                        &sc,
                        &data_inputs,
                        &shared,
                    );
                    for (&p, &v) in pos.iter().zip(&y) {
                        solver.add_clause(&[if v { p } else { !p }]);
                    }
                    for (&p, &v) in next.iter().zip(&s_next) {
                        solver.add_clause(&[if v { p } else { !p }]);
                    }
                }
                if solver.solve() == SatResult::Unsat {
                    return report(AttackOutcome::Cns, iterations);
                }
            }
        }
    }
    solver.pop_scope();
    match solver.solve() {
        SatResult::Unsat => report(AttackOutcome::Cns, iterations),
        SatResult::Unknown => report(AttackOutcome::Timeout, iterations),
        SatResult::Sat => {
            let key = KeyValue::from_bits(model_values(&solver, &k1));
            if verify_candidate_key(locked, &key, 256, 0x5a7) {
                report(AttackOutcome::KeyFound(key), iterations)
            } else {
                report(AttackOutcome::WrongKey(key), iterations)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cutelock_circuits::s27::s27;
    use cutelock_core::baselines::{TtLock, XorLock};
    use cutelock_core::str_lock::{CuteLockStr, CuteLockStrConfig};

    fn quick_budget() -> AttackBudget {
        AttackBudget {
            timeout: std::time::Duration::from_secs(30),
            max_bound: 1,
            max_iterations: 256,
            conflict_budget: Some(500_000),
        }
    }

    #[test]
    fn scan_sat_breaks_xor_lock() {
        let lc = XorLock::new(6, 41).lock(&s27()).unwrap();
        let report = scan_sat_attack(&lc, &quick_budget());
        assert!(
            matches!(report.outcome, AttackOutcome::KeyFound(_)),
            "got {}",
            report.outcome
        );
    }

    #[test]
    fn scan_sat_breaks_ttlock() {
        // FALL's prey; the plain SAT attack also breaks TTLock with scan.
        let lc = TtLock::new(4, 2).lock(&s27()).unwrap();
        let report = scan_sat_attack(&lc, &quick_budget());
        assert!(
            matches!(report.outcome, AttackOutcome::KeyFound(_)),
            "got {}",
            report.outcome
        );
    }

    #[test]
    fn scan_sat_dead_ends_on_multi_key_cutelock() {
        let lc = CuteLockStr::new(CuteLockStrConfig {
            keys: 4,
            key_bits: 2,
            locked_ffs: 1,
            seed: 31,
            schedule: None,
            ..Default::default()
        })
        .lock(&s27())
        .unwrap();
        assert!(!lc.schedule.is_constant(), "degenerate schedule");
        let report = scan_sat_attack(&lc, &quick_budget());
        assert!(
            matches!(
                report.outcome,
                AttackOutcome::Cns | AttackOutcome::WrongKey(_)
            ),
            "got {}",
            report.outcome
        );
    }
}

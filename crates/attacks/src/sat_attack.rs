//! The oracle-guided SAT attack (Subramanyan et al., HOST 2015) under the
//! full-scan assumption.
//!
//! With scan access every flip-flop is controllable and observable, so the
//! attack targets the *combinational core*: pseudo-inputs are the flip-flop
//! outputs, pseudo-outputs the flip-flop data inputs. The classic DIP loop
//! then runs on single input patterns instead of sequences.
//!
//! The oracle chip exposes only the **functional** state (the original
//! flip-flops) through its scan chain; state elements added by the lock
//! (the Cute-Lock counter, DK-Lock's mode register) have no oracle
//! counterpart. They remain attacker-controlled pseudo-inputs of the locked
//! model whose next-state is unobservable. This is exactly why Cute-Lock
//! survives even *with* scan access (paper §I): each DIP pins the counter
//! to some time `t` and teaches the attacker that the constant key must
//! equal `schedule[t]` — two DIPs with different times leave no consistent
//! key and the attack ends in [`AttackOutcome::Cns`].
//!
//! The miter itself — two scan-view copies with private keys, shared
//! inputs, and a retractable differ constraint — is built entirely by the
//! unified [`MiterBuilder`](cutelock_sat::MiterBuilder) engine; this module
//! is the DIP loop only.

use cutelock_core::{KeyValue, LockedCircuit};
use cutelock_sat::SatResult;

use crate::outcome::verify_candidate_key;
use crate::portfolio::Portfolio;
use crate::scan::ScanModel;
use crate::{AttackBudget, AttackOutcome, AttackReport, RunStats};

/// Runs the scan-access oracle-guided SAT attack on `locked` with a single
/// solver per query (no portfolio racing). Delegates to
/// [`run_attack`](crate::run_attack) with
/// [`AttackStrategy::ScanSat`](crate::AttackStrategy::ScanSat).
pub fn scan_sat_attack(locked: &LockedCircuit, budget: &AttackBudget) -> AttackReport {
    let spec = crate::AttackSpec::new(crate::AttackStrategy::ScanSat).with_budget(budget.clone());
    crate::run_attack(locked, &spec)
}

/// Runs the scan-access oracle-guided SAT attack, racing each solver query
/// across the given [`Portfolio`] (a `k <= 1` portfolio reproduces
/// [`scan_sat_attack`] bit for bit).
#[doc(hidden)] // build an `AttackSpec` instead; kept public for the goldens
pub fn scan_sat_attack_with(
    locked: &LockedCircuit,
    budget: &AttackBudget,
    portfolio: &Portfolio,
) -> AttackReport {
    let start = budget.start();
    let report = |outcome: AttackOutcome, iterations: usize, stats: RunStats| AttackReport {
        outcome,
        elapsed: budget.clock.now().duration_since(start),
        iterations,
        bound: 1,
        stats,
    };
    let Some(mut m) = ScanModel::new(locked, budget.conflict_budget) else {
        return report(AttackOutcome::Fail, 0, RunStats::default());
    };
    m.solver().set_clock(budget.clock.clone());
    portfolio.install(m.solver());
    let diff = m.obs_differ();
    // The "observations differ" constraint holds only during the DIP hunt:
    // keep it in a retractable scope so the final key-extraction solve runs
    // on the same live solver, unconstrained by the miter.
    m.solver().push_scope();
    m.solver().add_scoped_clause(&[diff]);

    let mut iterations = 0usize;
    loop {
        let Some(rem) = budget.remaining(start) else {
            return report(
                AttackOutcome::Timeout,
                iterations,
                m.solver().stats().into(),
            );
        };
        m.solver().set_timeout(Some(rem));
        match portfolio.race_scoped(m.solver(), &[]) {
            SatResult::Unknown => {
                return report(
                    AttackOutcome::Timeout,
                    iterations,
                    m.solver().stats().into(),
                )
            }
            SatResult::Unsat => break,
            SatResult::Sat => {
                iterations += 1;
                if iterations > budget.max_iterations {
                    return report(
                        AttackOutcome::Timeout,
                        iterations,
                        m.solver().stats().into(),
                    );
                }
                let x_dip = m.values(&m.xs);
                let s_dip = m.values(&m.ss);
                // Ask the oracle and constrain both key copies on this
                // pattern.
                m.constrain_pattern(&x_dip, &s_dip);
                if portfolio.race(m.solver()) == SatResult::Unsat {
                    return report(AttackOutcome::Cns, iterations, m.solver().stats().into());
                }
            }
        }
    }
    m.solver().pop_scope();
    match portfolio.race(m.solver()) {
        SatResult::Unsat => report(AttackOutcome::Cns, iterations, m.solver().stats().into()),
        SatResult::Unknown => report(
            AttackOutcome::Timeout,
            iterations,
            m.solver().stats().into(),
        ),
        SatResult::Sat => {
            let key = KeyValue::from_bits(m.values(&m.k1));
            if verify_candidate_key(locked, &key, 256, 0x5a7) {
                report(
                    AttackOutcome::KeyFound(key),
                    iterations,
                    m.solver().stats().into(),
                )
            } else {
                report(
                    AttackOutcome::WrongKey(key),
                    iterations,
                    m.solver().stats().into(),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cutelock_circuits::s27::s27;
    use cutelock_core::baselines::{TtLock, XorLock};
    use cutelock_core::str_lock::{CuteLockStr, CuteLockStrConfig};

    fn quick_budget() -> AttackBudget {
        AttackBudget {
            timeout: std::time::Duration::from_secs(30),
            max_bound: 1,
            max_iterations: 256,
            conflict_budget: Some(500_000),
            ..AttackBudget::default()
        }
    }

    #[test]
    fn scan_sat_breaks_xor_lock() {
        let lc = XorLock::new(6, 41).lock(&s27()).unwrap();
        let report = scan_sat_attack(&lc, &quick_budget());
        assert!(
            matches!(report.outcome, AttackOutcome::KeyFound(_)),
            "got {}",
            report.outcome
        );
    }

    #[test]
    fn scan_sat_breaks_ttlock() {
        // FALL's prey; the plain SAT attack also breaks TTLock with scan.
        let lc = TtLock::new(4, 2).lock(&s27()).unwrap();
        let report = scan_sat_attack(&lc, &quick_budget());
        assert!(
            matches!(report.outcome, AttackOutcome::KeyFound(_)),
            "got {}",
            report.outcome
        );
    }

    #[test]
    fn scan_sat_dead_ends_on_multi_key_cutelock() {
        let lc = CuteLockStr::new(CuteLockStrConfig {
            keys: 4,
            key_bits: 2,
            locked_ffs: 1,
            seed: 31,
            schedule: None,
            ..Default::default()
        })
        .lock(&s27())
        .unwrap();
        assert!(!lc.schedule.is_constant(), "degenerate schedule");
        let report = scan_sat_attack(&lc, &quick_budget());
        assert!(
            matches!(
                report.outcome,
                AttackOutcome::Cns | AttackOutcome::WrongKey(_)
            ),
            "got {}",
            report.outcome
        );
    }
}

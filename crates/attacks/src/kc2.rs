//! KC2 — Key-Condition Crunching (Shamsi et al., DATE 2019).
//!
//! KC2 accelerates the incremental unrolling attack by *simplifying the key
//! condition* as oracle constraints accumulate: after each discriminating
//! sequence it probes every still-free key bit with cheap bounded SAT calls
//! and permanently fixes the implied ones. On single-key locks this
//! collapses the key space rapidly; on Cute-Lock the probes accelerate the
//! discovery that **no** constant key remains, so KC2 reaches the paper's
//! `CNS` verdict faster than plain INT — visible in Tables III–IV, where
//! KC2 times track INT closely.

use cutelock_core::LockedCircuit;

use crate::bmc::{BmcMode, Engine, InitModel};
use crate::portfolio::Portfolio;
use crate::{AttackBudget, AttackReport};

/// Runs the KC2-mode attack: incremental unrolling plus key-bit fixation.
/// Delegates to [`run_attack`](crate::run_attack) with
/// [`AttackStrategy::Kc2`](crate::AttackStrategy::Kc2).
pub fn kc2_attack(locked: &LockedCircuit, budget: &AttackBudget) -> AttackReport {
    let spec = crate::AttackSpec::new(crate::AttackStrategy::Kc2).with_budget(budget.clone());
    crate::run_attack(locked, &spec)
}

/// Runs the KC2-mode attack, racing each solver query across the given
/// [`Portfolio`] (the cheap key-bit probes stay single-solver).
#[doc(hidden)] // build an `AttackSpec` instead; kept public for the goldens
pub fn kc2_attack_with(
    locked: &LockedCircuit,
    budget: &AttackBudget,
    portfolio: &Portfolio,
) -> AttackReport {
    Engine::new(locked, budget, InitModel::Reset, true, portfolio).run(BmcMode::Int)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttackOutcome;
    use cutelock_circuits::s27::s27;
    use cutelock_core::baselines::XorLock;
    use cutelock_core::str_lock::{CuteLockStr, CuteLockStrConfig};

    fn quick_budget() -> AttackBudget {
        AttackBudget {
            timeout: std::time::Duration::from_secs(30),
            max_bound: 6,
            max_iterations: 64,
            conflict_budget: Some(500_000),
            ..AttackBudget::default()
        }
    }

    #[test]
    fn kc2_breaks_xor_lock() {
        let lc = XorLock::new(4, 13).lock(&s27()).unwrap();
        let report = kc2_attack(&lc, &quick_budget());
        assert!(
            matches!(report.outcome, AttackOutcome::KeyFound(_)),
            "got {}",
            report.outcome
        );
    }

    #[test]
    fn kc2_dead_ends_on_multi_key_cutelock() {
        let lc = CuteLockStr::new(CuteLockStrConfig {
            keys: 4,
            key_bits: 2,
            locked_ffs: 1,
            seed: 17,
            schedule: None,
            ..Default::default()
        })
        .lock(&s27())
        .unwrap();
        assert!(!lc.schedule.is_constant(), "degenerate schedule");
        let report = kc2_attack(&lc, &quick_budget());
        assert!(
            matches!(
                report.outcome,
                AttackOutcome::Cns | AttackOutcome::WrongKey(_)
            ),
            "got {}",
            report.outcome
        );
    }
}

//! AppSAT and Double-DIP — the approximate / strengthened SAT-attack
//! variants cited in the paper's related work (§II-B).
//!
//! * **AppSAT** (Shamsi et al., HOST 2017) interleaves the exact DIP loop
//!   with random-query error estimation and settles for an *approximate*
//!   key once the observed error rate drops below a threshold — effective
//!   against low-corruptibility point functions (Anti-SAT), and a relevant
//!   adversary for any scheme whose wrong keys corrupt rarely.
//! * **Double-DIP** (Shen & Zhou, GLSVLSI 2017) constrains each iteration
//!   to find input patterns that eliminate *at least two* wrong keys at
//!   once, defeating SARLock-style one-key-per-DIP defenses.
//!
//! Both are built here on the scan-view model of [`crate::sat_attack`].
//! Against Cute-Lock they fare no better than the exact attack: the
//! approximate key AppSAT returns is still a *constant* key, so its error
//! rate can never reach zero, and the run ends in a (labeled) approximate
//! wrong key; Double-DIP's pair constraint just reaches the `CNS` dead end
//! in fewer iterations.

use std::collections::HashMap;
use std::time::Instant;

use cutelock_core::{KeyValue, LockedCircuit};
use cutelock_netlist::unroll::scan_view;
use cutelock_netlist::NetId;
use cutelock_sat::{tseitin, Lit, SatResult, Solver};
use cutelock_sim::NetlistOracle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::encode::{const_lit, model_values};
use crate::outcome::verify_candidate_key;
use crate::{AttackBudget, AttackOutcome, AttackReport};

/// Settings specific to AppSAT.
#[derive(Debug, Clone, Copy)]
pub struct AppSatConfig {
    /// Run the error estimation every this many DIP iterations.
    pub settle_every: usize,
    /// Number of random queries per estimation round.
    pub queries: usize,
    /// Accept the key when the estimated error rate is at or below this.
    pub error_threshold: f64,
}

impl Default for AppSatConfig {
    fn default() -> Self {
        Self {
            settle_every: 4,
            queries: 64,
            error_threshold: 0.0,
        }
    }
}

/// Shared scan-view attack state for the two variants.
struct ScanModel<'a> {
    locked: &'a LockedCircuit,
    sv: cutelock_netlist::unroll::ScanView,
    data_inputs: Vec<NetId>,
    shared_ffs: Vec<usize>,
    solver: Solver,
    k1: Vec<Lit>,
    k2: Vec<Lit>,
    xs: Vec<Lit>,
    ss: Vec<Lit>,
    obs1: Vec<Lit>,
    obs2: Vec<Lit>,
    oracle: NetlistOracle,
}

impl<'a> ScanModel<'a> {
    fn new(locked: &'a LockedCircuit, budget: &AttackBudget) -> Option<Self> {
        let ki = locked.netlist.key_inputs().len();
        if ki == 0 {
            return None;
        }
        let sv = scan_view(&locked.netlist).ok()?;
        let oracle = NetlistOracle::new(locked.original.clone()).ok()?;
        let orig_q: Vec<String> = locked
            .original
            .dffs()
            .iter()
            .map(|ff| locked.original.net_name(ff.q()).to_string())
            .collect();
        let locked_q: Vec<String> = locked
            .netlist
            .dffs()
            .iter()
            .map(|ff| locked.netlist.net_name(ff.q()).to_string())
            .collect();
        let shared_ffs: Vec<usize> = orig_q
            .iter()
            .map(|name| locked_q.iter().position(|n| n == name).expect("shared FF"))
            .collect();
        let mut solver = Solver::new();
        solver.set_conflict_budget(budget.conflict_budget);
        let k1: Vec<Lit> = (0..ki).map(|_| Lit::positive(solver.new_var())).collect();
        let k2: Vec<Lit> = (0..ki).map(|_| Lit::positive(solver.new_var())).collect();
        let data_inputs = locked.netlist.data_inputs();
        let xs: Vec<Lit> = (0..data_inputs.len())
            .map(|_| Lit::positive(solver.new_var()))
            .collect();
        let ss: Vec<Lit> = (0..locked.netlist.dff_count())
            .map(|_| Lit::positive(solver.new_var()))
            .collect();
        let mut model = Self {
            locked,
            sv,
            data_inputs,
            shared_ffs,
            solver,
            k1,
            k2,
            xs,
            ss,
            obs1: Vec::new(),
            obs2: Vec::new(),
            oracle,
        };
        let k1c = model.k1.clone();
        let k2c = model.k2.clone();
        let xsc = model.xs.clone();
        let ssc = model.ss.clone();
        let (po1, ns1) = model.encode_copy(&k1c, &xsc, &ssc);
        let (po2, ns2) = model.encode_copy(&k2c, &xsc, &ssc);
        model.obs1 = po1.into_iter().chain(ns1).collect();
        model.obs2 = po2.into_iter().chain(ns2).collect();
        Some(model)
    }

    fn sv_net(&self, id: NetId) -> NetId {
        self.sv
            .netlist
            .find_net(self.locked.netlist.net_name(id))
            .expect("net present in scan view")
    }

    /// Encodes one copy; returns `(po lits, shared next-state lits)`.
    fn encode_copy(&mut self, keys: &[Lit], xs: &[Lit], ss: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let mut map: HashMap<NetId, Lit> = HashMap::new();
        for (&kid, &l) in self.locked.netlist.key_inputs().iter().zip(keys) {
            map.insert(self.sv_net(kid), l);
        }
        for (&did, &l) in self.data_inputs.clone().iter().zip(xs) {
            map.insert(self.sv_net(did), l);
        }
        for (&sid, &l) in self.sv.state_inputs.clone().iter().zip(ss) {
            map.insert(sid, l);
        }
        let cnf = tseitin::encode(&self.sv.netlist, &mut self.solver, &map).expect("combinational");
        let pos: Vec<Lit> = self
            .locked
            .netlist
            .outputs()
            .iter()
            .map(|&o| cnf.lit(self.sv_net(o)))
            .collect();
        let next: Vec<Lit> = self
            .shared_ffs
            .iter()
            .map(|&f| cnf.lit(self.sv.next_state_outputs[f]))
            .collect();
        (pos, next)
    }

    /// Adds oracle-consistency constraints for one scan pattern, for both
    /// key copies.
    fn constrain_pattern(&mut self, x: &[bool], s: &[bool]) {
        let s_shared: Vec<bool> = self.shared_ffs.iter().map(|&f| s[f]).collect();
        let (y, s_next) = self.oracle.scan_query(&s_shared, x);
        for keys in [self.k1.clone(), self.k2.clone()] {
            let xc: Vec<Lit> = x.iter().map(|&b| const_lit(&mut self.solver, b)).collect();
            let sc: Vec<Lit> = s.iter().map(|&b| const_lit(&mut self.solver, b)).collect();
            let (pos, next) = self.encode_copy(&keys, &xc, &sc);
            for (&p, &v) in pos.iter().zip(&y) {
                self.solver.add_clause(&[if v { p } else { !p }]);
            }
            for (&p, &v) in next.iter().zip(&s_next) {
                self.solver.add_clause(&[if v { p } else { !p }]);
            }
        }
    }

    /// Estimated error rate of candidate `key` over random stimulus,
    /// via the 64-lane batched miter: `queries` cycles × 64 lanes of
    /// samples per call instead of one scalar sequence.
    fn estimate_error(&mut self, key: &KeyValue, queries: usize, rng: &mut StdRng) -> f64 {
        self.locked
            .wide_corruption_rate(key, queries, rng.next_u64())
            .unwrap_or(1.0)
    }
}

/// Runs AppSAT on `locked`.
///
/// Returns [`AttackOutcome::KeyFound`] only when the settled key verifies
/// exactly; an approximate key that still errs is reported as
/// [`AttackOutcome::WrongKey`] (the paper's `x..x`).
pub fn appsat_attack(
    locked: &LockedCircuit,
    budget: &AttackBudget,
    config: &AppSatConfig,
) -> AttackReport {
    let start = Instant::now();
    let mk = |outcome, iterations| AttackReport {
        outcome,
        elapsed: start.elapsed(),
        iterations,
        bound: 1,
    };
    let Some(mut m) = ScanModel::new(locked, budget) else {
        return mk(AttackOutcome::Fail, 0);
    };
    let mut rng = StdRng::seed_from_u64(0xa995a7);
    let diff = tseitin::encode_vectors_differ(&mut m.solver, &m.obs1.clone(), &m.obs2.clone());
    // Retractable DIP-hunt constraint (see `sat_attack`): the final
    // extraction reuses the same live solver once the scope is popped.
    m.solver.push_scope();
    m.solver.add_scoped_clause(&[diff]);
    let mut iterations = 0usize;
    loop {
        let Some(rem) = budget.remaining(start) else {
            return mk(AttackOutcome::Timeout, iterations);
        };
        m.solver.set_timeout(Some(rem));
        match m.solver.solve_scoped(&[]) {
            SatResult::Unknown => return mk(AttackOutcome::Timeout, iterations),
            SatResult::Unsat => break,
            SatResult::Sat => {
                iterations += 1;
                if iterations > budget.max_iterations {
                    return mk(AttackOutcome::Timeout, iterations);
                }
                let x = model_values(&m.solver, &m.xs);
                let s = model_values(&m.solver, &m.ss);
                m.constrain_pattern(&x, &s);
                if m.solver.solve() == SatResult::Unsat {
                    return mk(AttackOutcome::Cns, iterations);
                }
                // Settle phase: estimate the current candidate's error.
                if iterations % config.settle_every == 0 {
                    let cand = KeyValue::from_bits(model_values(&m.solver, &m.k1));
                    let err = m.estimate_error(&cand, config.queries, &mut rng);
                    if err <= config.error_threshold {
                        return if verify_candidate_key(locked, &cand, 256, 0xa1) {
                            mk(AttackOutcome::KeyFound(cand), iterations)
                        } else {
                            mk(AttackOutcome::WrongKey(cand), iterations)
                        };
                    }
                }
            }
        }
    }
    m.solver.pop_scope();
    match m.solver.solve() {
        SatResult::Unsat => mk(AttackOutcome::Cns, iterations),
        SatResult::Unknown => mk(AttackOutcome::Timeout, iterations),
        SatResult::Sat => {
            let cand = KeyValue::from_bits(model_values(&m.solver, &m.k1));
            if verify_candidate_key(locked, &cand, 256, 0xa2) {
                mk(AttackOutcome::KeyFound(cand), iterations)
            } else {
                mk(AttackOutcome::WrongKey(cand), iterations)
            }
        }
    }
}

/// Runs the Double-DIP attack: each iteration demands an input pattern on
/// which the two key copies disagree **and** at least one of them also
/// disagrees with a third key copy — guaranteeing every DIP prunes two or
/// more wrong keys.
pub fn double_dip_attack(locked: &LockedCircuit, budget: &AttackBudget) -> AttackReport {
    let start = Instant::now();
    let mk = |outcome, iterations| AttackReport {
        outcome,
        elapsed: start.elapsed(),
        iterations,
        bound: 1,
    };
    let Some(mut m) = ScanModel::new(locked, budget) else {
        return mk(AttackOutcome::Fail, 0);
    };
    // Third key copy sharing the same inputs.
    let ki = m.k1.len();
    let k3: Vec<Lit> = (0..ki).map(|_| Lit::positive(m.solver.new_var())).collect();
    let (po3, ns3) = {
        let xs = m.xs.clone();
        let ss = m.ss.clone();
        m.encode_copy(&k3, &xs, &ss)
    };
    let obs3: Vec<Lit> = po3.into_iter().chain(ns3).collect();
    let d12 = tseitin::encode_vectors_differ(&mut m.solver, &m.obs1.clone(), &m.obs2.clone());
    let d13 = tseitin::encode_vectors_differ(&mut m.solver, &m.obs1.clone(), &obs3);

    // Phase 1 scope: demand a *double* DIP (both miters differ).
    m.solver.push_scope();
    m.solver.add_scoped_clause(&[d12]);
    m.solver.add_scoped_clause(&[d13]);
    let mut iterations = 0usize;
    loop {
        let Some(rem) = budget.remaining(start) else {
            return mk(AttackOutcome::Timeout, iterations);
        };
        m.solver.set_timeout(Some(rem));
        match m.solver.solve_scoped(&[]) {
            SatResult::Unknown => return mk(AttackOutcome::Timeout, iterations),
            SatResult::Unsat => break,
            SatResult::Sat => {
                iterations += 1;
                if iterations > budget.max_iterations {
                    return mk(AttackOutcome::Timeout, iterations);
                }
                let x = model_values(&m.solver, &m.xs);
                let s = model_values(&m.solver, &m.ss);
                m.constrain_pattern(&x, &s);
                // Keep the third copy consistent too.
                {
                    let s_shared: Vec<bool> = m.shared_ffs.iter().map(|&f| s[f]).collect();
                    let (y, s_next) = m.oracle.scan_query(&s_shared, &x);
                    let xc: Vec<Lit> = x.iter().map(|&b| const_lit(&mut m.solver, b)).collect();
                    let sc: Vec<Lit> = s.iter().map(|&b| const_lit(&mut m.solver, b)).collect();
                    let (pos, next) = m.encode_copy(&k3.clone(), &xc, &sc);
                    for (&p, &v) in pos.iter().zip(&y) {
                        m.solver.add_clause(&[if v { p } else { !p }]);
                    }
                    for (&p, &v) in next.iter().zip(&s_next) {
                        m.solver.add_clause(&[if v { p } else { !p }]);
                    }
                }
                if m.solver.solve() == SatResult::Unsat {
                    return mk(AttackOutcome::Cns, iterations);
                }
            }
        }
    }
    m.solver.pop_scope();
    // Fall back to the single-miter termination: no pair of distinguishable
    // keys remains at all, or only double-DIPs are exhausted. Phase 2
    // scope: a plain single-miter DIP.
    m.solver.push_scope();
    m.solver.add_scoped_clause(&[d12]);
    loop {
        let Some(rem) = budget.remaining(start) else {
            return mk(AttackOutcome::Timeout, iterations);
        };
        m.solver.set_timeout(Some(rem));
        match m.solver.solve_scoped(&[]) {
            SatResult::Unknown => return mk(AttackOutcome::Timeout, iterations),
            SatResult::Unsat => break,
            SatResult::Sat => {
                iterations += 1;
                if iterations > budget.max_iterations {
                    return mk(AttackOutcome::Timeout, iterations);
                }
                let x = model_values(&m.solver, &m.xs);
                let s = model_values(&m.solver, &m.ss);
                m.constrain_pattern(&x, &s);
                if m.solver.solve() == SatResult::Unsat {
                    return mk(AttackOutcome::Cns, iterations);
                }
            }
        }
    }
    m.solver.pop_scope();
    match m.solver.solve() {
        SatResult::Unsat => mk(AttackOutcome::Cns, iterations),
        SatResult::Unknown => mk(AttackOutcome::Timeout, iterations),
        SatResult::Sat => {
            let cand = KeyValue::from_bits(model_values(&m.solver, &m.k1));
            if verify_candidate_key(locked, &cand, 256, 0xdd) {
                mk(AttackOutcome::KeyFound(cand), iterations)
            } else {
                mk(AttackOutcome::WrongKey(cand), iterations)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cutelock_circuits::s27::s27;
    use cutelock_core::baselines::{TtLock, XorLock};
    use cutelock_core::str_lock::{CuteLockStr, CuteLockStrConfig};

    fn quick_budget() -> AttackBudget {
        AttackBudget {
            timeout: std::time::Duration::from_secs(30),
            max_bound: 1,
            max_iterations: 256,
            conflict_budget: Some(500_000),
        }
    }

    #[test]
    fn appsat_breaks_xor_lock_exactly() {
        let lc = XorLock::new(5, 51).lock(&s27()).unwrap();
        let report = appsat_attack(&lc, &quick_budget(), &AppSatConfig::default());
        assert!(
            matches!(report.outcome, AttackOutcome::KeyFound(_)),
            "got {}",
            report.outcome
        );
    }

    #[test]
    fn appsat_settles_early_on_low_corruption_lock() {
        // TTLock corrupts on a single input pattern; with a permissive
        // threshold AppSAT settles for an approximate key quickly.
        let lc = TtLock::new(4, 9).lock(&s27()).unwrap();
        let cfg = AppSatConfig {
            settle_every: 1,
            queries: 16,
            error_threshold: 0.1,
        };
        let report = appsat_attack(&lc, &quick_budget(), &cfg);
        assert!(
            matches!(
                report.outcome,
                AttackOutcome::KeyFound(_) | AttackOutcome::WrongKey(_)
            ),
            "got {}",
            report.outcome
        );
    }

    #[test]
    fn appsat_dead_ends_on_multi_key_cutelock() {
        let lc = CuteLockStr::new(CuteLockStrConfig {
            keys: 4,
            key_bits: 2,
            locked_ffs: 1,
            seed: 61,
            schedule: None,
            ..Default::default()
        })
        .lock(&s27())
        .unwrap();
        let report = appsat_attack(&lc, &quick_budget(), &AppSatConfig::default());
        assert!(report.outcome.defense_held(), "got {}", report.outcome);
    }

    #[test]
    fn double_dip_breaks_xor_lock() {
        let lc = XorLock::new(4, 53).lock(&s27()).unwrap();
        let report = double_dip_attack(&lc, &quick_budget());
        assert!(
            matches!(report.outcome, AttackOutcome::KeyFound(_)),
            "got {}",
            report.outcome
        );
    }

    #[test]
    fn double_dip_dead_ends_on_multi_key_cutelock() {
        let lc = CuteLockStr::new(CuteLockStrConfig {
            keys: 4,
            key_bits: 2,
            locked_ffs: 1,
            seed: 62,
            schedule: None,
            ..Default::default()
        })
        .lock(&s27())
        .unwrap();
        let report = double_dip_attack(&lc, &quick_budget());
        assert!(report.outcome.defense_held(), "got {}", report.outcome);
    }
}

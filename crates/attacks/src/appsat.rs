//! AppSAT and Double-DIP — the approximate / strengthened SAT-attack
//! variants cited in the paper's related work (§II-B).
//!
//! * **AppSAT** (Shamsi et al., HOST 2017) interleaves the exact DIP loop
//!   with random-query error estimation and settles for an *approximate*
//!   key once the observed error rate drops below a threshold — effective
//!   against low-corruptibility point functions (Anti-SAT), and a relevant
//!   adversary for any scheme whose wrong keys corrupt rarely.
//! * **Double-DIP** (Shen & Zhou, GLSVLSI 2017) constrains each iteration
//!   to find input patterns that eliminate *at least two* wrong keys at
//!   once, defeating SARLock-style one-key-per-DIP defenses.
//!
//! Both run on the shared scan miter model (the same
//! [`MiterBuilder`](cutelock_sat::MiterBuilder)-built model as
//! [`crate::sat_attack`]); Double-DIP just adds a third key copy. Against
//! Cute-Lock they fare no better than the exact attack: the approximate
//! key AppSAT returns is still a *constant* key, so its error rate can
//! never reach zero, and the run ends in a (labeled) approximate wrong
//! key; Double-DIP's pair constraint just reaches the `CNS` dead end in
//! fewer iterations.

use cutelock_core::{KeyValue, LockedCircuit};
use cutelock_sat::SatResult;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::outcome::verify_candidate_key;
use crate::portfolio::Portfolio;
use crate::scan::ScanModel;
use crate::{AttackBudget, AttackOutcome, AttackReport, RunStats};

/// Settings specific to AppSAT.
#[derive(Debug, Clone, Copy)]
pub struct AppSatConfig {
    /// Run the error estimation every this many DIP iterations.
    pub settle_every: usize,
    /// Number of random queries per estimation round.
    pub queries: usize,
    /// Accept the key when the estimated error rate is at or below this.
    pub error_threshold: f64,
}

impl Default for AppSatConfig {
    fn default() -> Self {
        Self {
            settle_every: 4,
            queries: 64,
            error_threshold: 0.0,
        }
    }
}

/// Estimated error rate of candidate `key` over random stimulus, via the
/// 64-lane batched miter: `queries` cycles × 64 lanes of samples per call
/// instead of one scalar sequence.
fn estimate_error(locked: &LockedCircuit, key: &KeyValue, queries: usize, rng: &mut StdRng) -> f64 {
    locked
        .wide_corruption_rate(key, queries, rng.next_u64())
        .unwrap_or(1.0)
}

/// Runs AppSAT on `locked`.
///
/// Returns [`AttackOutcome::KeyFound`] only when the settled key verifies
/// exactly; an approximate key that still errs is reported as
/// [`AttackOutcome::WrongKey`] (the paper's `x..x`).
pub fn appsat_attack(
    locked: &LockedCircuit,
    budget: &AttackBudget,
    config: &AppSatConfig,
) -> AttackReport {
    appsat_attack_with(locked, budget, config, &Portfolio::single())
}

/// Runs AppSAT, racing each solver query across the given [`Portfolio`]
/// (same verdict semantics as [`appsat_attack`]).
pub fn appsat_attack_with(
    locked: &LockedCircuit,
    budget: &AttackBudget,
    config: &AppSatConfig,
    portfolio: &Portfolio,
) -> AttackReport {
    let start = budget.start();
    let mk = |outcome, iterations, stats: RunStats| AttackReport {
        outcome,
        elapsed: budget.clock.now().duration_since(start),
        iterations,
        bound: 1,
        stats,
    };
    let Some(mut m) = ScanModel::new(locked, budget.conflict_budget) else {
        return mk(AttackOutcome::Fail, 0, RunStats::default());
    };
    m.solver().set_clock(budget.clock.clone());
    portfolio.install(m.solver());
    let mut rng = StdRng::seed_from_u64(0xa995a7);
    let diff = m.obs_differ();
    // Retractable DIP-hunt constraint (see `sat_attack`): the final
    // extraction reuses the same live solver once the scope is popped.
    m.solver().push_scope();
    m.solver().add_scoped_clause(&[diff]);
    let mut iterations = 0usize;
    loop {
        let Some(rem) = budget.remaining(start) else {
            return mk(
                AttackOutcome::Timeout,
                iterations,
                m.solver().stats().into(),
            );
        };
        m.solver().set_timeout(Some(rem));
        match portfolio.race_scoped(m.solver(), &[]) {
            SatResult::Unknown => {
                return mk(
                    AttackOutcome::Timeout,
                    iterations,
                    m.solver().stats().into(),
                )
            }
            SatResult::Unsat => break,
            SatResult::Sat => {
                iterations += 1;
                if iterations > budget.max_iterations {
                    return mk(
                        AttackOutcome::Timeout,
                        iterations,
                        m.solver().stats().into(),
                    );
                }
                let x = m.values(&m.xs);
                let s = m.values(&m.ss);
                m.constrain_pattern(&x, &s);
                if portfolio.race(m.solver()) == SatResult::Unsat {
                    return mk(AttackOutcome::Cns, iterations, m.solver().stats().into());
                }
                // Settle phase: estimate the current candidate's error.
                if iterations % config.settle_every == 0 {
                    let cand = KeyValue::from_bits(m.values(&m.k1));
                    let err = estimate_error(locked, &cand, config.queries, &mut rng);
                    if err <= config.error_threshold {
                        return if verify_candidate_key(locked, &cand, 256, 0xa1) {
                            mk(
                                AttackOutcome::KeyFound(cand),
                                iterations,
                                m.solver().stats().into(),
                            )
                        } else {
                            mk(
                                AttackOutcome::WrongKey(cand),
                                iterations,
                                m.solver().stats().into(),
                            )
                        };
                    }
                }
            }
        }
    }
    m.solver().pop_scope();
    match portfolio.race(m.solver()) {
        SatResult::Unsat => mk(AttackOutcome::Cns, iterations, m.solver().stats().into()),
        SatResult::Unknown => mk(
            AttackOutcome::Timeout,
            iterations,
            m.solver().stats().into(),
        ),
        SatResult::Sat => {
            let cand = KeyValue::from_bits(m.values(&m.k1));
            if verify_candidate_key(locked, &cand, 256, 0xa2) {
                mk(
                    AttackOutcome::KeyFound(cand),
                    iterations,
                    m.solver().stats().into(),
                )
            } else {
                mk(
                    AttackOutcome::WrongKey(cand),
                    iterations,
                    m.solver().stats().into(),
                )
            }
        }
    }
}

/// Runs the Double-DIP attack: each iteration demands an input pattern on
/// which the two key copies disagree **and** at least one of them also
/// disagrees with a third key copy — guaranteeing every DIP prunes two or
/// more wrong keys. Delegates to [`run_attack`](crate::run_attack) with
/// [`AttackStrategy::DoubleDip`](crate::AttackStrategy::DoubleDip).
pub fn double_dip_attack(locked: &LockedCircuit, budget: &AttackBudget) -> AttackReport {
    let spec = crate::AttackSpec::new(crate::AttackStrategy::DoubleDip).with_budget(budget.clone());
    crate::run_attack(locked, &spec)
}

/// Runs Double-DIP, racing each solver query across the given
/// [`Portfolio`].
#[doc(hidden)] // build an `AttackSpec` instead; kept public for the goldens
pub fn double_dip_attack_with(
    locked: &LockedCircuit,
    budget: &AttackBudget,
    portfolio: &Portfolio,
) -> AttackReport {
    let start = budget.start();
    let mk = |outcome, iterations, stats: RunStats| AttackReport {
        outcome,
        elapsed: budget.clock.now().duration_since(start),
        iterations,
        bound: 1,
        stats,
    };
    let Some(mut m) = ScanModel::new(locked, budget.conflict_budget) else {
        return mk(AttackOutcome::Fail, 0, RunStats::default());
    };
    m.solver().set_clock(budget.clock.clone());
    portfolio.install(m.solver());
    // Third key copy sharing the same inputs.
    let (k3, f3) = m.add_key_copy();
    let d12 = m.obs_differ();
    let (f1, obs3) = (m.f1.clone(), f3);
    let d13 = m.m.obs_differ(&f1, &obs3);

    // Phase 1 scope: demand a *double* DIP (both miters differ).
    m.solver().push_scope();
    m.solver().add_scoped_clause(&[d12]);
    m.solver().add_scoped_clause(&[d13]);
    let mut iterations = 0usize;
    loop {
        let Some(rem) = budget.remaining(start) else {
            return mk(
                AttackOutcome::Timeout,
                iterations,
                m.solver().stats().into(),
            );
        };
        m.solver().set_timeout(Some(rem));
        match portfolio.race_scoped(m.solver(), &[]) {
            SatResult::Unknown => {
                return mk(
                    AttackOutcome::Timeout,
                    iterations,
                    m.solver().stats().into(),
                )
            }
            SatResult::Unsat => break,
            SatResult::Sat => {
                iterations += 1;
                if iterations > budget.max_iterations {
                    return mk(
                        AttackOutcome::Timeout,
                        iterations,
                        m.solver().stats().into(),
                    );
                }
                let x = m.values(&m.xs);
                let s = m.values(&m.ss);
                // One oracle query constrains all three key copies (the
                // third must stay consistent too).
                let (k1, k2) = (m.k1.clone(), m.k2.clone());
                m.constrain_pattern_for(&[&k1, &k2, &k3], &x, &s);
                if portfolio.race(m.solver()) == SatResult::Unsat {
                    return mk(AttackOutcome::Cns, iterations, m.solver().stats().into());
                }
            }
        }
    }
    m.solver().pop_scope();
    // Fall back to the single-miter termination: no pair of distinguishable
    // keys remains at all, or only double-DIPs are exhausted. Phase 2
    // scope: a plain single-miter DIP.
    m.solver().push_scope();
    m.solver().add_scoped_clause(&[d12]);
    loop {
        let Some(rem) = budget.remaining(start) else {
            return mk(
                AttackOutcome::Timeout,
                iterations,
                m.solver().stats().into(),
            );
        };
        m.solver().set_timeout(Some(rem));
        match portfolio.race_scoped(m.solver(), &[]) {
            SatResult::Unknown => {
                return mk(
                    AttackOutcome::Timeout,
                    iterations,
                    m.solver().stats().into(),
                )
            }
            SatResult::Unsat => break,
            SatResult::Sat => {
                iterations += 1;
                if iterations > budget.max_iterations {
                    return mk(
                        AttackOutcome::Timeout,
                        iterations,
                        m.solver().stats().into(),
                    );
                }
                let x = m.values(&m.xs);
                let s = m.values(&m.ss);
                m.constrain_pattern(&x, &s);
                if portfolio.race(m.solver()) == SatResult::Unsat {
                    return mk(AttackOutcome::Cns, iterations, m.solver().stats().into());
                }
            }
        }
    }
    m.solver().pop_scope();
    match portfolio.race(m.solver()) {
        SatResult::Unsat => mk(AttackOutcome::Cns, iterations, m.solver().stats().into()),
        SatResult::Unknown => mk(
            AttackOutcome::Timeout,
            iterations,
            m.solver().stats().into(),
        ),
        SatResult::Sat => {
            let cand = KeyValue::from_bits(m.values(&m.k1));
            if verify_candidate_key(locked, &cand, 256, 0xdd) {
                mk(
                    AttackOutcome::KeyFound(cand),
                    iterations,
                    m.solver().stats().into(),
                )
            } else {
                mk(
                    AttackOutcome::WrongKey(cand),
                    iterations,
                    m.solver().stats().into(),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cutelock_circuits::s27::s27;
    use cutelock_core::baselines::{TtLock, XorLock};
    use cutelock_core::str_lock::{CuteLockStr, CuteLockStrConfig};

    fn quick_budget() -> AttackBudget {
        AttackBudget {
            timeout: std::time::Duration::from_secs(30),
            max_bound: 1,
            max_iterations: 256,
            conflict_budget: Some(500_000),
            ..AttackBudget::default()
        }
    }

    #[test]
    fn appsat_breaks_xor_lock_exactly() {
        let lc = XorLock::new(5, 51).lock(&s27()).unwrap();
        let report = appsat_attack(&lc, &quick_budget(), &AppSatConfig::default());
        assert!(
            matches!(report.outcome, AttackOutcome::KeyFound(_)),
            "got {}",
            report.outcome
        );
    }

    #[test]
    fn appsat_settles_early_on_low_corruption_lock() {
        // TTLock corrupts on a single input pattern; with a permissive
        // threshold AppSAT settles for an approximate key quickly.
        let lc = TtLock::new(4, 9).lock(&s27()).unwrap();
        let cfg = AppSatConfig {
            settle_every: 1,
            queries: 16,
            error_threshold: 0.1,
        };
        let report = appsat_attack(&lc, &quick_budget(), &cfg);
        assert!(
            matches!(
                report.outcome,
                AttackOutcome::KeyFound(_) | AttackOutcome::WrongKey(_)
            ),
            "got {}",
            report.outcome
        );
    }

    #[test]
    fn appsat_dead_ends_on_multi_key_cutelock() {
        let lc = CuteLockStr::new(CuteLockStrConfig {
            keys: 4,
            key_bits: 2,
            locked_ffs: 1,
            seed: 61,
            schedule: None,
            ..Default::default()
        })
        .lock(&s27())
        .unwrap();
        let report = appsat_attack(&lc, &quick_budget(), &AppSatConfig::default());
        assert!(report.outcome.defense_held(), "got {}", report.outcome);
    }

    #[test]
    fn double_dip_breaks_xor_lock() {
        let lc = XorLock::new(4, 53).lock(&s27()).unwrap();
        let report = double_dip_attack(&lc, &quick_budget());
        assert!(
            matches!(report.outcome, AttackOutcome::KeyFound(_)),
            "got {}",
            report.outcome
        );
    }

    #[test]
    fn double_dip_dead_ends_on_multi_key_cutelock() {
        let lc = CuteLockStr::new(CuteLockStrConfig {
            keys: 4,
            key_bits: 2,
            locked_ffs: 1,
            seed: 62,
            schedule: None,
            ..Default::default()
        })
        .lock(&s27())
        .unwrap();
        let report = double_dip_attack(&lc, &quick_budget());
        assert!(report.outcome.defense_held(), "got {}", report.outcome);
    }
}

//! Sequential oracle-guided unrolling attacks (NEOS `bbo` / `int` modes).
//!
//! Both attacks search for a **constant key** consistent with the sequential
//! oracle by unrolling the locked circuit over clock cycles and running the
//! classic DIP loop per bound:
//!
//! 1. build a *miter*: two copies of the unrolled locked circuit sharing the
//!    input sequence (and, for RANE, the unknown initial state) but carrying
//!    independent key variables `K1`, `K2`; ask the solver for an input
//!    sequence on which their outputs differ;
//! 2. query the oracle (the activated chip, simulated from reset) with that
//!    sequence and constrain both copies to reproduce the oracle's outputs;
//! 3. repeat until no discriminating sequence exists at this bound; then
//!    extract a candidate key, verify it by simulation, and either finish or
//!    deepen the unrolling.
//!
//! The key model is where Cute-Lock bites: once oracle constraints span two
//! counter times with different scheduled keys, *no* constant key is
//! consistent — the solver proves the attack's own model unsatisfiable and
//! the run ends in [`AttackOutcome::Cns`].
//!
//! All frame encoding happens through the unified
//! [`MiterBuilder`] engine: each clock cycle of each
//! miter copy is one [`MiterBuilder::frame`] call, with the next-state
//! literals threaded into the following frame. All modes share one
//! **persistent incremental solver**: frames are appended as the bound
//! grows, the per-bound "some output differs" constraint lives in a
//! retractable [`Solver`] scope ([`Solver::push_scope`] /
//! [`Solver::pop_scope`]), and oracle/DIP constraints are asserted
//! permanently — so learnt clauses survive across bounds and iterations.
//! [`BmcMode::Bbo`] and [`BmcMode::Int`] differ only in lineage (NEOS's
//! `bbo` historically re-solved from scratch per bound); the legacy
//! rebuild-per-bound path is kept as [`BmcMode::BboRebuild`] purely so the
//! `attacks` criterion bench can measure the incremental speedup. KC2 adds
//! key-bit fixation on top — see [`crate::kc2`].

use std::rc::Rc;

use cutelock_core::clock::Instant;
use cutelock_core::{KeyValue, LockedCircuit};
use cutelock_netlist::unroll::{scan_view, ScanView};
use cutelock_sat::{CircuitEncoder, Lit, MiterBuilder, PortVals, SatResult, Solver};
use cutelock_sim::{NetlistOracle, SequentialOracle};

use crate::outcome::verify_candidate_key;
use crate::portfolio::Portfolio;
use crate::{AttackBudget, AttackOutcome, AttackReport, RunStats};

/// Which unrolling strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BmcMode {
    /// NEOS "BBO". Historically re-solved from scratch at every bound; now
    /// appends frames to one persistent solver like [`BmcMode::Int`].
    Bbo,
    /// One incremental solver, frames appended as the bound grows (NEOS
    /// "INT").
    Int,
    /// The legacy BBO behavior: tear the solver down and re-encode the
    /// whole unrolling at every bound, replaying remembered DIPs. Kept as
    /// the baseline for the `bbo_rebuild_vs_incremental` criterion group;
    /// never the right choice outside benchmarking.
    BboRebuild,
}

/// How the attacker models the initial state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitModel {
    /// Known reset state (read from the netlist's flip-flop inits).
    Reset,
    /// Unknown initial state, modeled as secret variables shared by all
    /// copies (the RANE model).
    Secret,
}

/// Runs the BBO-mode attack. Delegates to [`run_attack`](crate::run_attack)
/// with [`AttackStrategy::Bbo`](crate::AttackStrategy::Bbo).
pub fn bbo_attack(locked: &LockedCircuit, budget: &AttackBudget) -> AttackReport {
    let spec = crate::AttackSpec::new(crate::AttackStrategy::Bbo).with_budget(budget.clone());
    crate::run_attack(locked, &spec)
}

/// Runs the BBO-mode attack, racing each solver query across the given
/// [`Portfolio`].
#[doc(hidden)] // build an `AttackSpec` instead; kept public for the goldens
pub fn bbo_attack_with(
    locked: &LockedCircuit,
    budget: &AttackBudget,
    portfolio: &Portfolio,
) -> AttackReport {
    Engine::new(locked, budget, InitModel::Reset, false, portfolio).run(BmcMode::Bbo)
}

/// Runs BBO with the legacy rebuild-per-bound solver strategy (the slow
/// NEOS baseline). Only useful for benchmarking against [`bbo_attack`].
pub fn bbo_rebuild_attack(locked: &LockedCircuit, budget: &AttackBudget) -> AttackReport {
    let portfolio = Portfolio::single();
    Engine::new(locked, budget, InitModel::Reset, false, &portfolio).run(BmcMode::BboRebuild)
}

/// Runs the INT-mode attack. Delegates to [`run_attack`](crate::run_attack)
/// with [`AttackStrategy::Int`](crate::AttackStrategy::Int).
pub fn int_attack(locked: &LockedCircuit, budget: &AttackBudget) -> AttackReport {
    let spec = crate::AttackSpec::new(crate::AttackStrategy::Int).with_budget(budget.clone());
    crate::run_attack(locked, &spec)
}

/// Runs the INT-mode attack, racing each solver query across the given
/// [`Portfolio`].
#[doc(hidden)] // build an `AttackSpec` instead; kept public for the goldens
pub fn int_attack_with(
    locked: &LockedCircuit,
    budget: &AttackBudget,
    portfolio: &Portfolio,
) -> AttackReport {
    Engine::new(locked, budget, InitModel::Reset, false, portfolio).run(BmcMode::Int)
}

/// One miter copy's per-frame literals.
struct Chain {
    /// Data-input literals per frame (only kept for the first copy).
    xs: Vec<Vec<Lit>>,
    /// Primary-output literals per frame.
    pos: Vec<Vec<Lit>>,
    /// State literals feeding the *next* frame.
    state: Vec<Lit>,
}

/// A remembered DIP: per-frame input vectors with the oracle's per-frame
/// output vectors.
type DipTrace = (Vec<Vec<bool>>, Vec<Vec<bool>>);

/// Incremental-mode state: the miter (owning the solver), the two
/// key-literal vectors, both chains, and the shared secret-initial-state
/// literals (if any).
struct IncState {
    m: MiterBuilder,
    k1: Vec<Lit>,
    k2: Vec<Lit>,
    c1: Chain,
    c2: Chain,
    secret: Option<Vec<Lit>>,
}

/// The shared DIP-loop engine (also used by [`crate::kc2`] and
/// [`crate::rane`]).
pub(crate) struct Engine<'a> {
    locked: &'a LockedCircuit,
    budget: &'a AttackBudget,
    init: InitModel,
    /// KC2 extension: probe and fix implied key bits after each iteration.
    fix_key_bits: bool,
    /// Query-level portfolio racing (and the attack-level stop flag).
    portfolio: &'a Portfolio,
    /// Shared so the legacy rebuild mode can restart from a fresh miter
    /// without re-deriving (or deep-copying) the view per bound.
    sv: Rc<ScanView>,
    start: Instant,
    iterations: usize,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(
        locked: &'a LockedCircuit,
        budget: &'a AttackBudget,
        init: InitModel,
        fix_key_bits: bool,
        portfolio: &'a Portfolio,
    ) -> Self {
        let sv = Rc::new(scan_view(&locked.netlist).expect("locked netlist is well-formed"));
        Self {
            locked,
            budget,
            init,
            fix_key_bits,
            portfolio,
            sv,
            start: budget.start(),
            iterations: 0,
        }
    }

    fn remaining(&self) -> Option<std::time::Duration> {
        self.budget.remaining(self.start)
    }

    fn report(&self, outcome: AttackOutcome, bound: usize, stats: RunStats) -> AttackReport {
        AttackReport {
            outcome,
            elapsed: self.budget.clock.now().duration_since(self.start),
            iterations: self.iterations,
            bound,
            stats,
        }
    }

    /// A fresh miter over the scan view with keys, optional secret initial
    /// state, and empty frame chains — the bound-0 state of a run.
    fn fresh_state(&self) -> IncState {
        let mut m = MiterBuilder::new(Rc::clone(&self.sv), &[]);
        m.enc
            .solver
            .set_conflict_budget(self.budget.conflict_budget);
        m.enc.solver.set_clock(self.budget.clock.clone());
        self.portfolio.install(&mut m.enc.solver);
        let k1 = m.fresh_keys();
        let k2 = m.fresh_keys();
        let secret: Option<Vec<Lit>> = (self.init == InitModel::Secret)
            .then(|| m.enc.fresh_lits(self.locked.netlist.dff_count()));
        let init = self.init_state(&mut m.enc, secret.as_deref());
        let c1 = Chain {
            xs: Vec::new(),
            pos: Vec::new(),
            state: init.clone(),
        };
        let c2 = Chain {
            xs: Vec::new(),
            pos: Vec::new(),
            state: init,
        };
        IncState {
            m,
            k1,
            k2,
            c1,
            c2,
            secret,
        }
    }

    /// Initial-state literals for a fresh chain: the RANE secret variables
    /// when provided, otherwise reset constants.
    fn init_state(&self, enc: &mut CircuitEncoder, secret: Option<&[Lit]>) -> Vec<Lit> {
        match (self.init, secret) {
            (InitModel::Secret, Some(s0)) => s0.to_vec(),
            _ => {
                let bits: Vec<bool> = self
                    .locked
                    .netlist
                    .dffs()
                    .iter()
                    .map(|ff| ff.init().unwrap_or(false))
                    .collect();
                enc.lits_const(&bits)
            }
        }
    }

    /// Adds the oracle-consistency constraints for a discriminating input
    /// sequence: both key copies must reproduce the oracle outputs.
    fn add_dip_constraints(
        &self,
        m: &mut MiterBuilder,
        k1: &[Lit],
        k2: &[Lit],
        secret: Option<&[Lit]>,
        xseq: &[Vec<bool>],
        oracle_out: &[Vec<bool>],
    ) {
        for keys in [k1, k2] {
            let mut state = self.init_state(&mut m.enc, secret);
            for (xs, ys) in xseq.iter().zip(oracle_out) {
                let f = m
                    .frame(keys, PortVals::Shared(&state), PortVals::Const(xs))
                    .expect("scan view encodes");
                m.enc.pin(&f.outputs, ys);
                state = f.next_state;
            }
        }
    }

    /// KC2-style key-bit fixation: probe each still-free key bit under a
    /// small conflict budget; implied bits get asserted as units, shrinking
    /// the key condition.
    ///
    /// Returns `true` when the attack's wall-clock deadline expired
    /// mid-probe (the caller must report [`AttackOutcome::Timeout`]). The
    /// probe loop checks the deadline *between* probes — a wide key no
    /// longer blows past `AttackBudget::timeout` one 2 000-conflict probe at
    /// a time — and the main loop's conflict budget is restored on every
    /// exit path, timeout included.
    fn crunch_key_bits(&self, solver: &mut Solver, k1: &[Lit], fixed: &mut [Option<bool>]) -> bool {
        let mut timed_out = false;
        for (j, &kj) in k1.iter().enumerate() {
            if fixed[j].is_some() {
                continue;
            }
            let Some(rem) = self.remaining() else {
                timed_out = true;
                break;
            };
            solver.set_timeout(Some(rem));
            solver.set_conflict_budget(Some(2_000));
            if solver.solve_with_assumptions(&[kj]) == SatResult::Unsat {
                solver.add_clause(&[!kj]);
                fixed[j] = Some(false);
            } else if solver.solve_with_assumptions(&[!kj]) == SatResult::Unsat {
                solver.add_clause(&[kj]);
                fixed[j] = Some(true);
            }
        }
        solver.set_conflict_budget(self.budget.conflict_budget);
        timed_out
    }

    pub(crate) fn run(mut self, mode: BmcMode) -> AttackReport {
        let ki = self.locked.netlist.key_inputs().len();
        if ki == 0 {
            return self.report(AttackOutcome::Fail, 0, RunStats::default());
        }
        let mut oracle =
            NetlistOracle::new(self.locked.original.clone()).expect("oracle netlist valid");

        // Remembered DIP sequences with oracle answers (replayed only in
        // the legacy rebuild mode, where the solver is torn down per bound).
        let mut dips: Vec<DipTrace> = Vec::new();

        let mut inc: Option<IncState> = None;
        let mut diff_lits: Vec<Lit> = Vec::new();
        let mut fixed: Vec<Option<bool>> = vec![None; ki];

        for bound in 1..=self.budget.max_bound {
            if mode == BmcMode::BboRebuild || inc.is_none() {
                let mut st = self.fresh_state();
                for (xseq, ys) in &dips {
                    self.add_dip_constraints(
                        &mut st.m,
                        &st.k1,
                        &st.k2,
                        st.secret.as_deref(),
                        xseq,
                        ys,
                    );
                }
                diff_lits.clear();
                inc = Some(st);
            }
            let st = inc.as_mut().expect("just built");

            // Extend the miter up to `bound` frames: fresh shared data
            // inputs per frame, state threaded from the previous frame.
            while st.c1.pos.len() < bound {
                let f1 =
                    st.m.frame(&st.k1, PortVals::Shared(&st.c1.state), PortVals::Fresh)
                        .expect("scan view encodes");
                let f2 =
                    st.m.frame(
                        &st.k2,
                        PortVals::Shared(&st.c2.state),
                        PortVals::Shared(&f1.xs),
                    )
                    .expect("scan view encodes");
                let d = st.m.enc.differ(&f1.outputs, &f2.outputs);
                st.c1.xs.push(f1.xs);
                st.c1.pos.push(f1.outputs);
                st.c1.state = f1.next_state;
                st.c2.pos.push(f2.outputs);
                st.c2.state = f2.next_state;
                diff_lits.push(d);
            }

            // DIP loop at this bound. The "some frame's outputs differ"
            // constraint holds only while we hunt for discriminating
            // sequences, so it lives in a retractable scope: one clause per
            // bound instead of one dead activation clause per iteration,
            // and the solver (with everything it learnt) stays live for the
            // candidate-key extraction and the next bound.
            st.m.enc.solver.push_scope();
            st.m.enc.solver.add_scoped_clause(&diff_lits);
            loop {
                let Some(rem) = self.remaining() else {
                    return self.report(
                        AttackOutcome::Timeout,
                        bound,
                        st.m.enc.solver.stats().into(),
                    );
                };
                st.m.enc.solver.set_timeout(Some(rem));
                match self.portfolio.race_scoped(&mut st.m.enc.solver, &[]) {
                    SatResult::Unknown => {
                        return self.report(
                            AttackOutcome::Timeout,
                            bound,
                            st.m.enc.solver.stats().into(),
                        )
                    }
                    SatResult::Unsat => break, // no DIS at this bound
                    SatResult::Sat => {
                        self.iterations += 1;
                        if self.iterations > self.budget.max_iterations {
                            return self.report(
                                AttackOutcome::Timeout,
                                bound,
                                st.m.enc.solver.stats().into(),
                            );
                        }
                        let xseq: Vec<Vec<bool>> = st
                            .c1
                            .xs
                            .iter()
                            .map(|frame| st.m.enc.values(frame))
                            .collect();
                        oracle.reset();
                        let ys: Vec<Vec<bool>> = xseq.iter().map(|x| oracle.step(x)).collect();
                        self.add_dip_constraints(
                            &mut st.m,
                            &st.k1,
                            &st.k2,
                            st.secret.as_deref(),
                            &xseq,
                            &ys,
                        );
                        if mode == BmcMode::BboRebuild {
                            dips.push((xseq, ys));
                        }
                        if self.fix_key_bits
                            && self.crunch_key_bits(&mut st.m.enc.solver, &st.k1, &mut fixed)
                        {
                            return self.report(
                                AttackOutcome::Timeout,
                                bound,
                                st.m.enc.solver.stats().into(),
                            );
                        }
                        // Consistency: does any constant key remain?
                        if self.portfolio.race(&mut st.m.enc.solver) == SatResult::Unsat {
                            return self.report(
                                AttackOutcome::Cns,
                                bound,
                                st.m.enc.solver.stats().into(),
                            );
                        }
                    }
                }
            }
            st.m.enc.solver.pop_scope();

            // No DIS at this bound: extract and verify a candidate key.
            match self.portfolio.race(&mut st.m.enc.solver) {
                SatResult::Unsat => {
                    return self.report(AttackOutcome::Cns, bound, st.m.enc.solver.stats().into())
                }
                SatResult::Unknown => {
                    return self.report(
                        AttackOutcome::Timeout,
                        bound,
                        st.m.enc.solver.stats().into(),
                    )
                }
                SatResult::Sat => {
                    let key = KeyValue::from_bits(st.m.enc.values(&st.k1));
                    if verify_candidate_key(self.locked, &key, 256, 0xd1f) {
                        return self.report(
                            AttackOutcome::KeyFound(key),
                            bound,
                            st.m.enc.solver.stats().into(),
                        );
                    }
                    if bound == self.budget.max_bound {
                        return self.report(
                            AttackOutcome::WrongKey(key),
                            bound,
                            st.m.enc.solver.stats().into(),
                        );
                    }
                    // Deepen the unrolling and keep going.
                }
            }
        }
        let stats = inc
            .as_ref()
            .map(|st| st.m.enc.solver.stats().into())
            .unwrap_or_default();
        self.report(AttackOutcome::Fail, self.budget.max_bound, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cutelock_circuits::s27::s27;
    use cutelock_core::baselines::XorLock;
    use cutelock_core::str_lock::{CuteLockStr, CuteLockStrConfig};
    use cutelock_core::KeySchedule;

    pub(crate) fn quick_budget() -> AttackBudget {
        AttackBudget {
            timeout: std::time::Duration::from_secs(30),
            max_bound: 6,
            max_iterations: 64,
            conflict_budget: Some(500_000),
            ..AttackBudget::default()
        }
    }

    #[test]
    fn int_breaks_xor_lock() {
        let lc = XorLock::new(4, 3).lock(&s27()).unwrap();
        let report = int_attack(&lc, &quick_budget());
        match &report.outcome {
            AttackOutcome::KeyFound(k) => {
                assert!(verify_candidate_key(&lc, k, 500, 1));
            }
            other => panic!("expected KeyFound, got {other}"),
        }
    }

    #[test]
    fn bbo_breaks_xor_lock() {
        let lc = XorLock::new(3, 7).lock(&s27()).unwrap();
        let report = bbo_attack(&lc, &quick_budget());
        assert!(
            matches!(report.outcome, AttackOutcome::KeyFound(_)),
            "got {}",
            report.outcome
        );
    }

    #[test]
    fn bbo_rebuild_matches_incremental_outcomes() {
        // The legacy rebuild path must stay a faithful baseline: same
        // verdicts as incremental BBO on both a breakable and a resilient
        // lock.
        let xor = XorLock::new(3, 7).lock(&s27()).unwrap();
        let inc = bbo_attack(&xor, &quick_budget());
        let reb = bbo_rebuild_attack(&xor, &quick_budget());
        assert_eq!(inc.outcome, reb.outcome, "inc {} vs rebuild {}", inc, reb);

        let cute = CuteLockStr::new(CuteLockStrConfig {
            keys: 2,
            key_bits: 2,
            locked_ffs: 1,
            seed: 11,
            schedule: None,
            ..Default::default()
        })
        .lock(&s27())
        .unwrap();
        let reb = bbo_rebuild_attack(&cute, &quick_budget());
        assert!(reb.outcome.defense_held(), "got {}", reb.outcome);
    }

    #[test]
    fn crunch_key_bits_times_out_and_restores_budget() {
        // Regression (attack-budget bugfix): with the wall clock already
        // exhausted, the probe loop must bail before probing anything and
        // must not leak its temporary 2 000-conflict budget.
        let lc = XorLock::new(4, 3).lock(&s27()).unwrap();
        let budget = AttackBudget {
            timeout: std::time::Duration::ZERO,
            ..quick_budget()
        };
        let portfolio = Portfolio::single();
        let engine = Engine::new(&lc, &budget, InitModel::Reset, true, &portfolio);
        let mut solver = Solver::new();
        solver.set_conflict_budget(budget.conflict_budget);
        let k1: Vec<Lit> = (0..4).map(|_| Lit::positive(solver.new_var())).collect();
        let mut fixed = vec![None; 4];
        let conflicts_before = solver.stats().conflicts;
        assert!(
            engine.crunch_key_bits(&mut solver, &k1, &mut fixed),
            "expired deadline must report a timeout"
        );
        assert_eq!(
            solver.conflict_budget(),
            budget.conflict_budget,
            "probe budget leaked into the main loop"
        );
        assert_eq!(
            solver.stats().conflicts,
            conflicts_before,
            "probes ran anyway"
        );
        assert!(fixed.iter().all(Option::is_none));
    }

    #[test]
    fn crunch_key_bits_restores_budget_after_probing() {
        // The success path must restore the budget too (covers the
        // incremental refactor's early-return audit).
        let lc = XorLock::new(2, 3).lock(&s27()).unwrap();
        let budget = quick_budget();
        let portfolio = Portfolio::single();
        let engine = Engine::new(&lc, &budget, InitModel::Reset, true, &portfolio);
        let mut solver = Solver::new();
        solver.set_conflict_budget(budget.conflict_budget);
        let k1: Vec<Lit> = (0..2).map(|_| Lit::positive(solver.new_var())).collect();
        // Force k1[0] true so the probe of !k1[0] is UNSAT and fixes a bit.
        solver.add_clause(&[k1[0]]);
        let mut fixed = vec![None; 2];
        assert!(!engine.crunch_key_bits(&mut solver, &k1, &mut fixed));
        assert_eq!(fixed[0], Some(true));
        assert_eq!(solver.conflict_budget(), budget.conflict_budget);
    }

    #[test]
    fn int_breaks_single_key_cutelock() {
        // The paper's validation (§IV.A): reduced to one key value,
        // Cute-Lock is SAT-attackable.
        let sched = KeySchedule::constant(cutelock_core::KeyValue::from_u64(2, 2), 4);
        let lc = CuteLockStr::new(CuteLockStrConfig {
            keys: 4,
            key_bits: 2,
            locked_ffs: 1,
            seed: 5,
            schedule: Some(sched),
            ..Default::default()
        })
        .lock(&s27())
        .unwrap();
        let report = int_attack(&lc, &quick_budget());
        assert!(
            matches!(report.outcome, AttackOutcome::KeyFound(_)),
            "got {}",
            report.outcome
        );
    }

    #[test]
    fn int_dead_ends_on_multi_key_cutelock() {
        let lc = CuteLockStr::new(CuteLockStrConfig {
            keys: 4,
            key_bits: 2,
            locked_ffs: 1,
            seed: 6,
            schedule: None,
            ..Default::default()
        })
        .lock(&s27())
        .unwrap();
        assert!(!lc.schedule.is_constant(), "degenerate schedule");
        let report = int_attack(&lc, &quick_budget());
        assert!(
            matches!(
                report.outcome,
                AttackOutcome::Cns | AttackOutcome::WrongKey(_)
            ),
            "expected CNS or wrong key, got {}",
            report.outcome
        );
    }

    #[test]
    fn bbo_dead_ends_on_multi_key_cutelock() {
        let lc = CuteLockStr::new(CuteLockStrConfig {
            keys: 2,
            key_bits: 2,
            locked_ffs: 1,
            seed: 11,
            schedule: None,
            ..Default::default()
        })
        .lock(&s27())
        .unwrap();
        assert!(!lc.schedule.is_constant(), "degenerate schedule");
        let report = bbo_attack(&lc, &quick_budget());
        assert!(report.outcome.defense_held(), "got {}", report.outcome);
    }
}

//! Attacks on logic locking: the evaluation substrate of the Cute-Lock paper.
//!
//! The paper tests its locks against the NEOS attack suite (`bbo`, `int`,
//! KC2 modes), RANE, FALL and DANA — all external tools. This crate
//! re-implements the published algorithms on the workspace's own SAT solver
//! and simulators:
//!
//! * [`sat_attack`] — the combinational oracle-guided SAT attack
//!   (Subramanyan et al.), applied through the full-scan view;
//! * [`bmc`] — sequential unrolling attacks: `BBO` and `INT`, both running
//!   on one persistent incremental solver (frames appended per bound, the
//!   per-bound miter constraint in a retractable solver scope); the legacy
//!   rebuild-per-bound BBO survives as a benchmarking baseline;
//! * [`kc2`] — key-condition crunching: incremental BMC plus key-bit
//!   fixation, after Shamsi et al.;
//! * [`rane`] — RANE-style formal attack modeling the initial state as a
//!   secret;
//! * [`fall`] — FALL-style functional analysis (comparator detection +
//!   candidate extraction + SAT verification), oracle-less;
//! * [`dana`] — DANA-style dataflow register clustering, scored with
//!   [`dana::nmi`] against ground-truth register words;
//! * [`portfolio`] — deterministic portfolio racing: every oracle-guided
//!   attack accepts a [`Portfolio`] that races diversified solver clones
//!   per DIP/BMC query across [`Pool`](cutelock_sim::pool::Pool) threads
//!   (bit-identical for any thread count), and [`portfolio_attack`] races
//!   whole strategies with cooperative cancellation.
//!
//! All of the above are driven through **one door**: build an
//! [`AttackSpec`] (strategy + budget + portfolio) and call [`run_attack`]
//! — the request type the CLI subcommands, the table bins, and the
//! `cutelock serve` job daemon share. The per-attack free functions
//! survive as delegating wrappers pinned by the golden regression suite.
//!
//! The full pipeline walkthrough lives in `docs/ARCHITECTURE.md` at the
//! repository root; the determinism rules the portfolio layer upholds are
//! codified in `docs/DETERMINISM.md`.
//!
//! Every oracle-guided attack reports an [`AttackOutcome`] matching the
//! paper's table legend: key found (green), wrong key (`x..x`), `CNS`
//! ("condition not solvable"), `FAIL`, or timeout (`N/A`). Every attack —
//! including the oracle-less [`fall`] and [`dana`] — enforces
//! [`AttackBudget::timeout`] as a hard wall-clock deadline.
//!
//! None of these modules touch CNF directly: every miter — the scan-access
//! two-copy model, the frame-appending BMC chains, FALL's confirmation
//! check, and the certifier's unrolled equivalence instances — is built
//! through the unified encoding engine in
//! [`cutelock_sat::encode`]
//! ([`CircuitEncoder`](cutelock_sat::CircuitEncoder) /
//! [`MiterBuilder`](cutelock_sat::MiterBuilder)), so the modules here
//! contain DIP-loop logic only.
//!
//! # Example
//!
//! The oracle-less FALL attack breaks TTLock but finds nothing on
//! Cute-Lock (the paper's Table V contrast):
//!
//! ```
//! use cutelock_attacks::fall::fall_attack;
//! use cutelock_attacks::AttackOutcome;
//! use cutelock_circuits::s27::s27;
//! use cutelock_core::baselines::TtLock;
//!
//! # fn main() -> Result<(), cutelock_core::LockError> {
//! let locked = TtLock::new(4, 3).lock(&s27())?;
//! let report = fall_attack(&locked);
//! assert!(matches!(report.outcome, AttackOutcome::KeyFound(_)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appsat;
pub mod bmc;
pub mod certify;
pub mod dana;
pub mod fall;
pub mod kc2;
mod outcome;
pub mod portfolio;
pub mod rane;
pub mod record;
pub mod sat_attack;
mod scan;
pub mod spec;

pub use outcome::{AttackBudget, AttackOutcome, AttackReport, RunStats};
pub use portfolio::{
    portfolio_attack, portfolio_attack_with_stop, Portfolio, RaceReport, Strategy,
};
pub use record::{write_records, RunRecord};
pub use spec::{run_attack, run_race, simplify_locked, AttackSpec, AttackStrategy};

//! DANA — Dataflow Analysis for Netlist reverse engineering (Albartus et
//! al., CHES 2020).
//!
//! DANA groups the flip-flops of a flattened netlist into *register words*
//! by analyzing the dataflow between them, giving a reverse engineer the
//! high-level structure back. Following the published algorithm's shape,
//! this implementation runs **partition refinement over register-level
//! dataflow signatures**: starting from one all-inclusive group, flip-flops
//! are repeatedly split by (driver gate kind, predecessor register set,
//! successor register set, primary-input visibility) until a fixpoint —
//! word bits, which share sources, sinks and their bit-slice recipe,
//! stay together; unrelated registers separate.
//!
//! Output quality is scored with **Normalized Mutual Information** ([`nmi`])
//! against the ground-truth word partition recorded by the circuit
//! generators, exactly as in the paper (Table V: original circuits score
//! 0.87–0.99; Cute-Lock-Str drags the average down to ≈0.4 because locked
//! flip-flops are re-wired through MUX trees into foreign cones and the
//! counter).

use std::collections::{BTreeSet, HashMap};
use std::time::Duration;

use cutelock_netlist::{cone, Driver, GateKind, Netlist};

use crate::AttackBudget;

/// Refinement signature of one flip-flop: driver kind, whether its cone reads
/// a primary input, predecessor labels, successor labels, and its own label.
type FfSignature = (Option<GateKind>, bool, Vec<usize>, Vec<usize>, usize);

/// Result of a DANA run.
#[derive(Debug, Clone)]
pub struct DanaReport {
    /// Recovered register groups (flip-flop indices).
    pub clusters: Vec<Vec<usize>>,
    /// Cluster label per flip-flop index.
    pub labels: Vec<usize>,
    /// CPU time.
    pub elapsed: Duration,
    /// True when [`AttackBudget::timeout`] expired before the refinement
    /// reached a fixpoint; `clusters`/`labels` then hold the partial (still
    /// well-formed) partition computed so far.
    pub timed_out: bool,
}

/// Runs register clustering on `nl` with the default [`AttackBudget`].
pub fn dana_attack(nl: &Netlist) -> DanaReport {
    dana_attack_with_budget(nl, &AttackBudget::default())
}

/// Runs register clustering on `nl`, enforcing `budget.timeout` across the
/// per-flip-flop cone analysis and every refinement round.
///
/// DANA is graph refinement, not SAT, so the deadline is polled between
/// units of work (one cone, one round); a run that exhausts its budget
/// returns the coarser partition it had with
/// [`DanaReport::timed_out`] set instead of overrunning the clock.
pub fn dana_attack_with_budget(nl: &Netlist, budget: &AttackBudget) -> DanaReport {
    let start = budget.start();
    let out_of_time = || budget.remaining(start).is_none();
    let n = nl.dff_count();
    if n == 0 {
        return DanaReport {
            clusters: Vec::new(),
            labels: Vec::new(),
            elapsed: budget.clock.now().duration_since(start),
            timed_out: false,
        };
    }

    let mut timed_out = out_of_time();

    // Register-level dataflow: predecessors and successors per FF.
    let mut preds: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut succs: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    if !timed_out {
        let graph = cone::ff_dependency_graph(nl);
        for (&src, dsts) in &graph {
            for &dst in dsts {
                succs[src].insert(dst);
                preds[dst].insert(src);
            }
        }
    }

    // Static per-FF features: the recipe of its next-state slice.
    let driver_kind: Vec<Option<GateKind>> = nl
        .dffs()
        .iter()
        .map(|ff| match nl.net(ff.d()).driver() {
            Driver::Gate(g) => Some(nl.gates()[g].kind()),
            _ => None,
        })
        .collect();
    let mut reads_pi = vec![false; n];
    for (f, ff) in nl.dffs().iter().enumerate() {
        if timed_out {
            break;
        }
        // One cone analysis = one unit of virtual time, ticked *before*
        // the check so a zero budget expires at cone 0 deterministically.
        budget.clock.tick(1);
        if out_of_time() {
            timed_out = true;
            break;
        }
        reads_pi[f] = cone::cone_support(nl, ff.d())
            .iter()
            .any(|&s| nl.net(s).driver() == Driver::Input);
    }

    // Partition refinement.
    let mut labels = vec![0usize; n];
    for _round in 0..64 {
        if timed_out {
            break;
        }
        // One refinement round = one unit of virtual time.
        budget.clock.tick(1);
        if out_of_time() {
            timed_out = true;
            break;
        }
        let mut sig_map: HashMap<FfSignature, usize> = HashMap::new();
        let mut next = vec![0usize; n];
        for f in 0..n {
            let pred_groups: BTreeSet<usize> = preds[f].iter().map(|&p| labels[p]).collect();
            let succ_groups: BTreeSet<usize> = succs[f].iter().map(|&s| labels[s]).collect();
            let sig = (
                driver_kind[f],
                reads_pi[f],
                pred_groups.into_iter().collect::<Vec<_>>(),
                succ_groups.into_iter().collect::<Vec<_>>(),
                labels[f],
            );
            let id = sig_map.len();
            let group = *sig_map.entry(sig).or_insert(id);
            next[f] = group;
        }
        if next == labels {
            break;
        }
        labels = next;
    }

    // Canonicalize labels and build cluster lists.
    let mut remap: HashMap<usize, usize> = HashMap::new();
    for l in &mut labels {
        let id = remap.len();
        *l = *remap.entry(*l).or_insert(id);
    }
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); remap.len()];
    for (f, &l) in labels.iter().enumerate() {
        clusters[l].push(f);
    }
    DanaReport {
        clusters,
        labels,
        elapsed: budget.clock.now().duration_since(start),
        timed_out,
    }
}

/// Normalized Mutual Information between two labelings of the same items,
/// `2·I(A;B) / (H(A)+H(B))`, in `[0, 1]`.
///
/// Degenerate cases follow the usual convention: two trivial (single-class)
/// labelings score 1; a trivial labeling against a non-trivial one scores 0.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn nmi(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must cover the same items");
    let n = a.len();
    if n == 0 {
        return 1.0;
    }
    let count = |labels: &[usize]| -> HashMap<usize, f64> {
        let mut m = HashMap::new();
        for &l in labels {
            *m.entry(l).or_insert(0.0) += 1.0;
        }
        m
    };
    let ca = count(a);
    let cb = count(b);
    let nf = n as f64;
    let entropy = |c: &HashMap<usize, f64>| -> f64 {
        c.values()
            .map(|&x| {
                let p = x / nf;
                -p * p.ln()
            })
            .sum()
    };
    let ha = entropy(&ca);
    let hb = entropy(&cb);
    if ha == 0.0 && hb == 0.0 {
        return 1.0;
    }
    if ha == 0.0 || hb == 0.0 {
        return 0.0;
    }
    let mut joint: HashMap<(usize, usize), f64> = HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        *joint.entry((x, y)).or_insert(0.0) += 1.0;
    }
    let mut mi = 0.0;
    for (&(x, y), &c) in &joint {
        let pxy = c / nf;
        let px = ca[&x] / nf;
        let py = cb[&y] / nf;
        mi += pxy * (pxy / (px * py)).ln();
    }
    (2.0 * mi / (ha + hb)).clamp(0.0, 1.0)
}

/// Scores a DANA result against ground truth restricted to the first
/// `n_original` flip-flops (lock-inserted state elements have no ground
/// truth and are excluded, as in the paper's locked-vs-original scoring).
pub fn score_against_ground_truth(report: &DanaReport, ground_truth_labels: &[usize]) -> f64 {
    let n = ground_truth_labels.len();
    nmi(
        &report.labels[..n.min(report.labels.len())],
        ground_truth_labels,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cutelock_circuits::itc99;
    use cutelock_core::str_lock::{CuteLockStr, CuteLockStrConfig};

    #[test]
    fn nmi_identical_labelings_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((nmi(&a, &a) - 1.0).abs() < 1e-9);
        // Label permutation does not matter.
        let b = vec![5, 5, 9, 9, 7, 7];
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nmi_degenerate_cases() {
        assert_eq!(nmi(&[0, 0, 0], &[0, 0, 0]), 1.0);
        assert_eq!(nmi(&[0, 0, 0], &[0, 1, 2]), 0.0);
        assert_eq!(nmi(&[], &[]), 1.0);
    }

    #[test]
    fn nmi_partial_agreement_between_zero_and_one() {
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 1, 0, 1];
        let v = nmi(&a, &b);
        assert!((0.0..0.1).contains(&v), "independent labelings: {v}");
        let c = vec![0, 0, 1, 2];
        let v2 = nmi(&a, &c);
        assert!(v2 > 0.5 && v2 < 1.0, "partial agreement: {v2}");
    }

    #[test]
    fn dana_recovers_words_on_clean_circuit() {
        let c = itc99("b12").unwrap();
        let report = dana_attack(&c.netlist);
        let score = score_against_ground_truth(&report, &c.word_labels());
        assert!(score > 0.6, "clean-circuit NMI too low: {score}");
    }

    #[test]
    fn dana_degrades_on_locked_circuit() {
        let c = itc99("b12").unwrap();
        let clean = score_against_ground_truth(&dana_attack(&c.netlist), &c.word_labels());
        let lc = CuteLockStr::new(CuteLockStrConfig {
            keys: 4,
            key_bits: 5,
            locked_ffs: c.netlist.dff_count() / 2,
            seed: 9,
            schedule: None,
            ..Default::default()
        })
        .lock(&c.netlist)
        .unwrap();
        let locked_score = score_against_ground_truth(&dana_attack(&lc.netlist), &c.word_labels());
        assert!(
            locked_score < clean,
            "locking must degrade NMI: clean {clean} vs locked {locked_score}"
        );
    }

    #[test]
    fn dana_times_out_at_exact_virtual_instants() {
        // Replaces the old zero-wall-timeout regression, which raced the
        // scheduler: under a virtual clock (1 ms per work unit — one cone
        // analysis, one refinement round) the timeout fires at an exact,
        // machine-independent point in the algorithm.
        use cutelock_core::clock::VirtualClock;
        let ms = Duration::from_millis;
        let c = itc99("b12").unwrap();
        let n = c.netlist.dff_count() as u64;

        // Zero budget: the first cone analysis expires it. The partial
        // partition is still well-formed: every FF labeled, one coarse
        // cluster covering the whole FF set.
        let vc = VirtualClock::with_tick(1_000_000);
        let budget = AttackBudget {
            timeout: Duration::ZERO,
            clock: vc.handle(),
            ..Default::default()
        };
        let report = dana_attack_with_budget(&c.netlist, &budget);
        assert!(report.timed_out);
        assert_eq!(report.labels.len(), c.netlist.dff_count());
        let covered: usize = report.clusters.iter().map(Vec::len).sum();
        assert_eq!(covered, c.netlist.dff_count());
        assert_eq!(report.clusters.len(), 1, "no refinement round ran");
        assert_eq!(report.elapsed, ms(1), "expired at cone 0");

        // Exactly n units: every cone is analyzed, refinement round 0
        // expires — the partition is still the single coarse cluster.
        let vc = VirtualClock::with_tick(1_000_000);
        let budget = AttackBudget {
            timeout: ms(n),
            clock: vc.handle(),
            ..Default::default()
        };
        let report = dana_attack_with_budget(&c.netlist, &budget);
        assert!(report.timed_out);
        assert_eq!(report.clusters.len(), 1, "expired before round 0 split");
        assert_eq!(report.elapsed, ms(n + 1), "expired at refinement round 0");

        // n + 1 units buys exactly one refinement round: the partition
        // refines past the coarse cluster but short of the fixpoint.
        let vc = VirtualClock::with_tick(1_000_000);
        let budget = AttackBudget {
            timeout: ms(n + 1),
            clock: vc.handle(),
            ..Default::default()
        };
        let one_round = dana_attack_with_budget(&c.netlist, &budget);
        assert!(one_round.timed_out);
        assert!(one_round.clusters.len() > 1, "round 0 split the cluster");

        // A generous virtual budget reaches the fixpoint and matches the
        // default wall-clock run label for label.
        let vc = VirtualClock::with_tick(1_000_000);
        let budget = AttackBudget {
            timeout: Duration::from_secs(3600),
            clock: vc.handle(),
            ..Default::default()
        };
        let report = dana_attack_with_budget(&c.netlist, &budget);
        assert!(!report.timed_out);
        assert_eq!(report.labels, dana_attack(&c.netlist).labels);
        assert!(report.clusters.len() >= one_round.clusters.len());
    }

    #[test]
    fn dana_handles_stateless_netlist() {
        let nl =
            cutelock_netlist::bench::parse("comb", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let report = dana_attack(&nl);
        assert!(report.clusters.is_empty());
    }
}

//! The run record: one attack run flattened into a [`cutelock_store`] row.
//!
//! Every producer — `cutelock attack --store`, the table bins, custom
//! harnesses — goes through [`RunRecord`] so the column set stays in one
//! place and every store file in the workspace shares the same schema
//! ([`RunRecord::schema`]).
//!
//! Determinism contract (`docs/DETERMINISM.md` Rule 9): every column is a
//! function of the spec and the search, except `elapsed_ns`, which is only
//! recorded when the spec's budget runs on a **virtual clock** (where
//! "time" is itself deterministic); under a wall clock it is written as 0
//! so two identical runs always produce byte-identical store files.

use cutelock_core::clock::ClockHandle;
use cutelock_core::LockedCircuit;
use cutelock_store::format::Writer;
use cutelock_store::{ColumnType, Schema, StoreError, Value};

use crate::spec::AttackSpec;
use crate::AttackReport;

/// One attack run, flattened to the store's row shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRecord {
    /// Circuit name (e.g. `s27`).
    pub circuit: String,
    /// Locking scheme (e.g. `CuteLockStr`).
    pub scheme: String,
    /// Keys in the schedule.
    pub keys: u64,
    /// Bits per key.
    pub key_bits: u64,
    /// The lock's construction seed.
    pub seed: u64,
    /// Attack strategy name (e.g. `sat`, `int`, `fall`).
    pub strategy: String,
    /// The paper-legend verdict label (e.g. `CNS`, `Equal`, `N/A`).
    pub verdict: String,
    /// True when the verdict decides the cell (see `AttackSpec::is_decisive`).
    pub decisive: bool,
    /// DIP iterations performed.
    pub iterations: u64,
    /// Final unrolling bound reached.
    pub bound: u64,
    /// SAT conflicts (deterministic at any thread count).
    pub conflicts: u64,
    /// Unit propagations.
    pub propagations: u64,
    /// Learnt-clause garbage collections.
    pub gc_runs: u64,
    /// Learnt clauses freed by GC.
    pub gc_freed_clauses: u64,
    /// Clauses exported to the share ledger.
    pub shared_exported: u64,
    /// Clauses imported from the share ledger.
    pub shared_imported: u64,
    /// Duplicate shared clauses dropped.
    pub shared_dup_dropped: u64,
    /// Elapsed nanoseconds — **only** when the budget ran on a virtual
    /// clock; 0 under a wall clock (Rule 9).
    pub elapsed_ns: u64,
}

impl RunRecord {
    /// The store schema every run record writes under.
    pub fn schema() -> Schema {
        Schema::new(&[
            ("circuit", ColumnType::Str),
            ("scheme", ColumnType::Str),
            ("keys", ColumnType::U64),
            ("key_bits", ColumnType::U64),
            ("seed", ColumnType::U64),
            ("strategy", ColumnType::Str),
            ("verdict", ColumnType::Str),
            ("decisive", ColumnType::Bool),
            ("iterations", ColumnType::U64),
            ("bound", ColumnType::U64),
            ("conflicts", ColumnType::U64),
            ("propagations", ColumnType::U64),
            ("gc_runs", ColumnType::U64),
            ("gc_freed_clauses", ColumnType::U64),
            ("shared_exported", ColumnType::U64),
            ("shared_imported", ColumnType::U64),
            ("shared_dup_dropped", ColumnType::U64),
            ("elapsed_ns", ColumnType::U64),
        ])
    }

    /// Flattens one finished run. `circuit` is the netlist's name as the
    /// producer knows it; everything else comes off the spec, the locked
    /// circuit, and the report.
    pub fn from_run(
        circuit: &str,
        seed: u64,
        locked: &LockedCircuit,
        spec: &AttackSpec,
        report: &AttackReport,
    ) -> RunRecord {
        let (shared_exported, shared_imported, shared_dup_dropped) = spec.portfolio.share_stats();
        // Rule 9: wall-clock time is machine noise; only a virtual clock's
        // elapsed time is deterministic enough to persist.
        let elapsed_ns = if spec.budget.clock.same_clock(&ClockHandle::wall()) {
            0
        } else {
            u64::try_from(report.elapsed.as_nanos()).unwrap_or(u64::MAX)
        };
        RunRecord {
            circuit: circuit.to_string(),
            scheme: locked.scheme.to_string(),
            keys: locked.schedule.num_keys() as u64,
            key_bits: locked.schedule.key_bits() as u64,
            seed,
            strategy: spec.strategy.name().to_string(),
            verdict: report.outcome.label().to_string(),
            decisive: AttackSpec::is_decisive(&report.outcome),
            iterations: report.iterations as u64,
            bound: report.bound as u64,
            conflicts: report.stats.conflicts,
            propagations: report.stats.propagations,
            gc_runs: report.stats.gc_runs,
            gc_freed_clauses: report.stats.gc_freed_clauses,
            shared_exported,
            shared_imported,
            shared_dup_dropped,
            elapsed_ns,
        }
    }

    /// This record as a store row, in [`RunRecord::schema`] column order.
    pub fn row(&self) -> Vec<Value> {
        vec![
            Value::str(self.circuit.clone()),
            Value::str(self.scheme.clone()),
            Value::U64(self.keys),
            Value::U64(self.key_bits),
            Value::U64(self.seed),
            Value::str(self.strategy.clone()),
            Value::str(self.verdict.clone()),
            Value::Bool(self.decisive),
            Value::U64(self.iterations),
            Value::U64(self.bound),
            Value::U64(self.conflicts),
            Value::U64(self.propagations),
            Value::U64(self.gc_runs),
            Value::U64(self.gc_freed_clauses),
            Value::U64(self.shared_exported),
            Value::U64(self.shared_imported),
            Value::U64(self.shared_dup_dropped),
            Value::U64(self.elapsed_ns),
        ]
    }
}

/// Appends `records` to the store at `path` (created with the run-record
/// schema if absent) — the one call every producer makes.
pub fn write_records(
    path: impl AsRef<std::path::Path>,
    records: &[RunRecord],
) -> Result<(), StoreError> {
    let mut w = Writer::open(path, RunRecord::schema())?;
    for r in records {
        w.push(&r.row())?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cutelock_store::format::read_table;

    fn record(n: u64) -> RunRecord {
        RunRecord {
            circuit: "s27".into(),
            scheme: "CuteLockStr".into(),
            keys: 4,
            key_bits: 2,
            seed: 0x5327,
            strategy: "sat".into(),
            verdict: "CNS".into(),
            decisive: true,
            iterations: n,
            bound: 1,
            conflicts: n * 10,
            propagations: n * 100,
            gc_runs: 0,
            gc_freed_clauses: 0,
            shared_exported: 0,
            shared_imported: 0,
            shared_dup_dropped: 0,
            elapsed_ns: 0,
        }
    }

    #[test]
    fn schema_and_row_stay_in_lockstep() {
        let r = record(3);
        assert_eq!(r.row().len(), RunRecord::schema().len());
        for (cell, (name, ty)) in r.row().iter().zip(RunRecord::schema().columns()) {
            assert_eq!(cell.column_type(), *ty, "column '{name}'");
        }
    }

    #[test]
    fn write_records_round_trips() {
        let dir = std::env::temp_dir().join(format!("cutelock-record-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("runs.clk");
        std::fs::remove_file(&path).ok();
        write_records(&path, &[record(1), record(2)]).unwrap();
        write_records(&path, &[record(3)]).unwrap(); // append mode
        let t = read_table(&path).unwrap();
        assert_eq!(t.rows(), 3);
        let iters = t.schema().index_of("iterations").unwrap();
        assert_eq!(t.value(2, iters), Value::U64(3));
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(&dir).ok();
    }
}

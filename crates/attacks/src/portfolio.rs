//! Deterministic portfolio SAT attacks — the first place the SAT layer
//! itself goes multi-core.
//!
//! Two racing layers, both built on the scoped work-stealing [`Pool`]:
//!
//! * **Query-level** ([`Portfolio::race_scoped`] / [`Portfolio::race`]):
//!   each DIP/BMC query clones the attack's live incremental solver into
//!   `k` entrants, diversifies them with
//!   [`SolverConfig::portfolio`], and races the clones
//!   across pool threads. The race proceeds in conflict-bounded **epochs**:
//!   every entrant runs one fixed-size budget slice per epoch, and among
//!   the entrants that answered inside the epoch the **lowest config index
//!   wins**. An entrant may cooperatively cancel only entrants *above* its
//!   own index (via the solver's [`stop` flag](Solver::set_stop) polled in
//!   the search loop), so the would-be winner is never interrupted — which
//!   is exactly why the winning index, its model, and therefore the whole
//!   attack trajectory are **bit-identical for any thread count**,
//!   including 1. The winner's solver (with everything it learnt) replaces
//!   the attack's main solver, so learning persists across queries.
//! * **Attack-level** ([`portfolio_attack`]): whole strategies — the scan
//!   SAT attack, KC2, and incremental BMC — race against one oracle under
//!   a shared [`AttackBudget`]. The first strategy to reach a decisive
//!   verdict (a verified key or a CNS proof — a refuted key settles
//!   nothing and cancels nobody) flips a shared stop flag; the losing
//!   strategies' solvers abort at their next propagate/decide round. This layer optimizes
//!   wall-clock, not reproducibility: *which* strategy wins first can vary
//!   with timing (every returned key is oracle-verified either way), so
//!   attack-level races stay out of the CI determinism diffs. The losing
//!   verdicts are reported as [`AttackOutcome::Timeout`].
//!
//! Determinism fine print (codified in `docs/DETERMINISM.md` at the
//! repository root): deadlines are measured on the budget's
//! [`ClockHandle`](cutelock_core::clock::ClockHandle). Under the default
//! wall clock the query-level guarantee holds as long as no deadline
//! fires mid-race — the reason the CI diffs run with generous
//! `--timeout` values. Under a virtual clock even a mid-race expiry is
//! deterministic: entrants never tick the shared clock (a cancelled
//! laggard's conflict count is scheduling-dependent); instead the race
//! credits each epoch's conflict slice once, after the epoch — a pure
//! function of the epoch index — so `golden_timeout.rs` can pin timeout
//! verdicts across thread counts.
//!
//! # Example
//!
//! ```
//! use cutelock_attacks::portfolio::Portfolio;
//! use cutelock_attacks::{run_attack, AttackSpec, AttackStrategy};
//! use cutelock_circuits::s27::s27;
//! use cutelock_core::baselines::XorLock;
//!
//! let locked = XorLock::new(4, 3).lock(&s27()).unwrap();
//! // Race 4 diversified solvers per DIP query on 2 worker threads; the
//! // result is identical to what `threads: 1` would produce.
//! let spec = AttackSpec::new(AttackStrategy::ScanSat).with_portfolio(Portfolio::new(4, 2));
//! let report = run_attack(&locked, &spec);
//! assert!(!report.outcome.defense_held() || report.iterations > 0);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use cutelock_core::LockedCircuit;
use cutelock_sat::{merge_exports, Lit, SatResult, ShareCap, SharedClause, Solver, SolverConfig};
use cutelock_sim::pool::Pool;

use crate::bmc::int_attack_with;
use crate::kc2::kc2_attack_with;
use crate::sat_attack::scan_sat_attack_with;
use crate::{AttackBudget, AttackOutcome, AttackReport};

/// Default conflicts per entrant in the first race epoch; later epochs
/// double it. Small enough that easy queries (the common case in a DIP
/// loop) finish in one slice, large enough that the per-epoch barrier is
/// noise on hard ones.
pub const DEFAULT_EPOCH_BASE: u64 = 2_000;

/// Portfolio settings threaded through every attack entry point.
///
/// [`Portfolio::single`] (the [`Default`]) disables racing entirely: the
/// attack runs its one solver exactly as it did before the portfolio layer
/// existed, bit for bit.
#[derive(Debug, Clone)]
pub struct Portfolio {
    /// Diversified solver entrants raced per query (`<= 1` disables
    /// racing).
    pub k: usize,
    /// Worker threads the race fans entrants across. The answer is
    /// identical for any value; this only buys wall-clock.
    pub threads: usize,
    /// Conflicts per entrant in the first epoch slice (doubled each
    /// epoch). [`DEFAULT_EPOCH_BASE`] when built via the constructors.
    pub epoch_base: u64,
    /// Attack-level cancellation: installed into every solver the attack
    /// creates, so a raced strategy can be retired from outside.
    pub stop: Option<Arc<AtomicBool>>,
    /// Epoch-barrier clause sharing: when enabled, every no-winner epoch
    /// ends with each entrant exporting its best learnts
    /// ([`Solver::export_learnts`]), the sets merged in entrant-index
    /// order into one canonical batch
    /// ([`merge_exports`]), and the batch
    /// re-imported into every entrant before the next slice. Off by
    /// default — with sharing off the race is bit-identical to the
    /// pre-sharing portfolio.
    pub share: bool,
    /// Quality caps on each sharing exchange (clause length, LBD, batch
    /// size). Tuning only — never part of a result's identity, exactly
    /// like [`threads`](Portfolio::threads).
    pub share_cap: ShareCap,
    /// Deterministic totals of the sharing traffic this portfolio (and
    /// every clone of it — the ledger is shared) has generated; what the
    /// CLI's verbose output and the daemon's RESULT line report.
    pub ledger: Arc<ShareLedger>,
}

/// Running totals of a portfolio's clause-sharing traffic. Cloned
/// [`Portfolio`]s share one ledger, so an attack's per-query races all
/// accumulate into the spec the caller holds.
///
/// The totals are **deterministic** (thread-count-independent): exchanges
/// happen only in no-winner epochs, where every entrant completed its
/// full conflict slice, so each entrant's export set — and therefore
/// every count below — is a pure function of the epoch index.
#[derive(Debug, Default)]
pub struct ShareLedger {
    exported: AtomicU64,
    imported: AtomicU64,
    dup_dropped: AtomicU64,
}

impl ShareLedger {
    /// `(exported, imported, dup_dropped)` so far.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.exported.load(Ordering::Relaxed),
            self.imported.load(Ordering::Relaxed),
            self.dup_dropped.load(Ordering::Relaxed),
        )
    }

    fn add(&self, exported: u64, imported: u64, dup_dropped: u64) {
        self.exported.fetch_add(exported, Ordering::Relaxed);
        self.imported.fetch_add(imported, Ordering::Relaxed);
        self.dup_dropped.fetch_add(dup_dropped, Ordering::Relaxed);
    }
}

impl Default for Portfolio {
    /// [`Portfolio::single`] — so `..Default::default()` struct updates
    /// inherit sane values (`epoch_base` in particular must never be 0).
    fn default() -> Self {
        Self::single()
    }
}

impl Portfolio {
    /// No racing: the attack behaves exactly as without a portfolio.
    pub fn single() -> Self {
        Self {
            k: 1,
            threads: 1,
            epoch_base: DEFAULT_EPOCH_BASE,
            stop: None,
            share: false,
            share_cap: ShareCap::default(),
            ledger: Arc::new(ShareLedger::default()),
        }
    }

    /// Race `k` diversified entrants per query across `threads` workers.
    pub fn new(k: usize, threads: usize) -> Self {
        Self {
            k: k.max(1),
            threads: threads.max(1),
            ..Self::single()
        }
    }

    /// Attaches an attack-level cancellation flag (see
    /// [`portfolio_attack`]).
    pub fn with_stop(mut self, stop: Arc<AtomicBool>) -> Self {
        self.stop = Some(stop);
        self
    }

    /// Enables or disables epoch-barrier clause sharing (builder style).
    pub fn with_share(mut self, share: bool) -> Self {
        self.share = share;
        self
    }

    /// Sets the sharing exchange caps (builder style).
    pub fn with_share_cap(mut self, cap: ShareCap) -> Self {
        self.share_cap = cap;
        self
    }

    /// `(exported, imported, dup_dropped)` clause-sharing totals across
    /// every race this portfolio (or a clone) has run.
    pub fn share_stats(&self) -> (u64, u64, u64) {
        self.ledger.snapshot()
    }

    /// Installs this portfolio's attack-level stop flag into a solver the
    /// attack just created — every engine calls this right after building
    /// its miter.
    pub fn install(&self, solver: &mut Solver) {
        solver.set_stop(self.stop.clone());
    }

    /// True when the attack-level stop flag has been raised.
    pub fn stop_requested(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Races a [`Solver::solve_scoped`] query (every open scope active)
    /// and leaves the winning entrant's state in `solver`.
    pub fn race_scoped(&self, solver: &mut Solver, assumptions: &[Lit]) -> SatResult {
        self.race_inner(solver, true, assumptions)
    }

    /// Races a plain [`Solver::solve_with_assumptions`] query (open scopes
    /// *inactive*) and leaves the winning entrant's state in `solver`.
    pub fn race(&self, solver: &mut Solver) -> SatResult {
        self.race_inner(solver, false, &[])
    }

    /// The epoch race. See the module docs for the determinism argument;
    /// in short: entrant budgets are conflict counts (pure functions of
    /// the epoch and config index), an entrant may only cancel entrants
    /// above its own index, and the lowest-index finisher of the first
    /// decisive epoch wins — so scheduling order can never change the
    /// winner or its model.
    fn race_inner(&self, solver: &mut Solver, scoped: bool, assumptions: &[Lit]) -> SatResult {
        if self.k <= 1 {
            return if scoped {
                solver.solve_scoped(assumptions)
            } else {
                solver.solve_with_assumptions(assumptions)
            };
        }
        if self.stop_requested() {
            return SatResult::Unknown;
        }
        let saved_budget = solver.conflict_budget();
        let ticking = solver.clock_ticking();
        // The race gives up once every entrant has spent the solver's own
        // conflict budget — the same surrender point a single solver has.
        let cap = saved_budget.unwrap_or(u64::MAX);
        let configs = SolverConfig::portfolio(self.k);
        let entrants: Vec<Mutex<Solver>> = configs
            .iter()
            .map(|cfg| {
                let mut s = solver.clone();
                s.apply_config(cfg);
                // Entrants must not tick the (shared) clock: which conflicts
                // a retired laggard got to run is scheduling-dependent, so
                // entrant ticks would leak thread timing into virtual time.
                // The race ticks once per epoch slice instead (below) —
                // a pure function of the epoch index.
                s.set_clock_ticking(false);
                Mutex::new(s)
            })
            .collect();
        let pool = Pool::new(self.threads);
        let mut spent = 0u64;
        let mut epoch = 0u32;
        loop {
            // Clamp each slice to the conflicts still unspent under the
            // cap, so the race surrenders at the same total-conflict point
            // a single solver would instead of overshooting by a slice.
            let slice = self
                .epoch_base
                .max(1)
                .saturating_mul(1 << epoch.min(16))
                .min(cap - spent);
            let flags: Vec<Arc<AtomicBool>> = (0..self.k)
                .map(|_| Arc::new(AtomicBool::new(false)))
                .collect();
            let results: Vec<SatResult> = pool.map(self.k, |i| {
                let mut s = entrants[i].lock().expect("entrant lock");
                let stagger = configs[i].conflict_stagger;
                s.set_conflict_budget(Some(slice.saturating_add(stagger).min(cap - spent)));
                // The race flag goes in the solver's second cancellation
                // slot, so the attack-level stop flag the entrant cloned
                // from the main solver keeps working mid-slice.
                s.set_race_stop(Some(Arc::clone(&flags[i])));
                let r = if scoped {
                    s.solve_scoped(assumptions)
                } else {
                    s.solve_with_assumptions(assumptions)
                };
                if r != SatResult::Unknown {
                    // Retire only the entrants ABOVE this index: a finisher
                    // must never interrupt a lower-index entrant that would
                    // also finish, or the winner would depend on timing.
                    for f in &flags[i + 1..] {
                        f.store(true, Ordering::Relaxed);
                    }
                }
                r
            });
            // Virtual-clock accounting for the whole epoch: every entrant
            // ran (up to) one `slice`, so the race credits exactly `slice`
            // conflicts of time — deterministic because the slice sizes are
            // pure functions of the epoch index, winner or no winner.
            if ticking {
                solver.clock().tick(slice);
            }
            if let Some(w) = results.iter().position(|&r| r != SatResult::Unknown) {
                let winner = entrants.into_iter().nth(w).expect("winner index in range");
                let mut winner = winner.into_inner().expect("entrant lock");
                winner.set_conflict_budget(saved_budget);
                winner.set_race_stop(None);
                winner.set_clock_ticking(ticking);
                *solver = winner;
                return results[w];
            }
            spent = spent.saturating_add(slice);
            if spent >= cap || solver.deadline_expired() || self.stop_requested() {
                // Out of conflicts, out of wall-clock, or cancelled from
                // the attack level: surrender like a single solver would.
                // `solver` keeps its pre-race state (budgets untouched).
                return SatResult::Unknown;
            }
            if self.share {
                // Epoch-barrier clause exchange. This branch only runs in
                // no-winner epochs, and cancellation only flows from a
                // finisher — so no entrant was interrupted mid-slice here
                // and every export set is a pure function of the epoch
                // index. Exports are gathered in entrant-index order and
                // merged into one canonical batch, keeping the exchange —
                // and therefore the whole race — thread-count-independent
                // (DETERMINISM.md Rule 7).
                let exports: Vec<Vec<SharedClause>> = entrants
                    .iter()
                    .map(|e| {
                        e.lock()
                            .expect("entrant lock")
                            .export_learnts(self.share_cap)
                    })
                    .collect();
                let exported: u64 = exports.iter().map(|s| s.len() as u64).sum();
                let batch = merge_exports(&exports, self.share_cap);
                let (mut imported, mut dups) = (0u64, 0u64);
                for e in &entrants {
                    let (i, d) = e.lock().expect("entrant lock").import_clauses(&batch);
                    imported += i;
                    dups += d;
                }
                self.ledger.add(exported, imported, dups);
            }
            epoch += 1;
        }
    }
}

/// A whole attack strategy the attack-level race can field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The combinational scan-access SAT attack
    /// ([`crate::sat_attack::scan_sat_attack`]).
    ScanSat,
    /// KC2: incremental BMC plus key-bit fixation
    /// ([`crate::kc2::kc2_attack`]).
    Kc2,
    /// The incremental sequential unrolling attack
    /// ([`crate::bmc::int_attack`]).
    BmcInt,
}

impl Strategy {
    /// Every strategy the race can field, in canonical order.
    pub const ALL: [Strategy; 3] = [Strategy::ScanSat, Strategy::Kc2, Strategy::BmcInt];

    /// The strategy's table/CLI label.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::ScanSat => "sat",
            Strategy::Kc2 => "kc2",
            Strategy::BmcInt => "int",
        }
    }
}

/// Outcome of an attack-level race: the winning strategy (first to a
/// decisive verdict), its report, and every strategy's report for the
/// record.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// The strategy that reached a decisive verdict — a verified key or a
    /// CNS proof — first, if any did within the budget.
    pub winner: Option<Strategy>,
    /// The winner's report, or — when no strategy was decisive — the
    /// best-ranked report, ties broken by canonical strategy order.
    pub report: AttackReport,
    /// All reports in [`Strategy::ALL`]-relative order. Cancelled losers
    /// read [`AttackOutcome::Timeout`].
    pub reports: Vec<(Strategy, AttackReport)>,
}

/// True when a verdict settles the race: a **verified** key (the lock is
/// broken) or a CNS proof (this strategy's model admits no constant key).
/// A wrong key or a `Fail` settles nothing — another strategy may still
/// break the lock, so such verdicts must not cancel the others.
fn is_decisive(outcome: &AttackOutcome) -> bool {
    matches!(outcome, AttackOutcome::KeyFound(_) | AttackOutcome::Cns)
}

/// Races whole attack strategies against one oracle under a shared
/// [`AttackBudget`], with cooperative cancellation: the first strategy to
/// reach a *decisive* verdict (a verified key, or a CNS proof — see
/// [`RaceReport::winner`]) raises a shared stop flag, and every other
/// strategy's solver aborts at its next propagate/decide round. Wrong-key
/// and `Fail` finishes do **not** cancel the race: a strategy whose model
/// is inadequate for the lock must not silence one that could break it.
///
/// `inner_k` sets the query-level portfolio width *inside* each strategy
/// (1 = single solver per query; entrants race serially within the
/// strategy's worker so the thread budget stays with the strategy race).
/// *Which* strategy wins here can vary with timing — use a pure
/// query-level [`Portfolio`] when reproducible output matters more than
/// wall-clock — though any returned key is oracle-verified regardless.
pub fn portfolio_attack(
    locked: &LockedCircuit,
    budget: &AttackBudget,
    strategies: &[Strategy],
    threads: usize,
    inner_k: usize,
) -> RaceReport {
    portfolio_attack_with_stop(locked, budget, strategies, threads, inner_k, None)
}

/// [`portfolio_attack`] with an externally owned stop flag: when `stop` is
/// provided it doubles as a **cancellation slot** — raising it from
/// outside (the job daemon's `CANCEL`) aborts every strategy at its next
/// propagate/decide round, exactly as an internal decisive win would. The
/// cancelled strategies report [`AttackOutcome::Timeout`] and the race
/// returns with no winner.
pub fn portfolio_attack_with_stop(
    locked: &LockedCircuit,
    budget: &AttackBudget,
    strategies: &[Strategy],
    threads: usize,
    inner_k: usize,
    stop: Option<Arc<AtomicBool>>,
) -> RaceReport {
    if strategies.is_empty() {
        let report = AttackReport {
            outcome: AttackOutcome::Fail,
            elapsed: std::time::Duration::ZERO,
            iterations: 0,
            bound: 0,
            stats: crate::RunStats::default(),
        };
        return RaceReport {
            winner: None,
            report,
            reports: Vec::new(),
        };
    }
    let stop = stop.unwrap_or_else(|| Arc::new(AtomicBool::new(false)));
    let claimed = AtomicUsize::new(usize::MAX);
    let pool = Pool::new(threads.max(1).min(strategies.len()));
    let reports: Vec<AttackReport> = pool.map(strategies.len(), |i| {
        let p = Portfolio::new(inner_k, 1).with_stop(Arc::clone(&stop));
        let r = match strategies[i] {
            Strategy::ScanSat => scan_sat_attack_with(locked, budget, &p),
            Strategy::Kc2 => kc2_attack_with(locked, budget, &p),
            Strategy::BmcInt => int_attack_with(locked, budget, &p),
        };
        if is_decisive(&r.outcome)
            && claimed
                .compare_exchange(usize::MAX, i, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            stop.store(true, Ordering::Relaxed);
        }
        r
    });
    let winner_idx = claimed.load(Ordering::SeqCst);
    let (winner, report) = if winner_idx != usize::MAX {
        (Some(strategies[winner_idx]), reports[winner_idx].clone())
    } else {
        // No decisive verdict (everything timed out, failed, or returned
        // refuted keys): fall back to the best-ranked report, ties broken
        // by strategy order.
        let best = (0..reports.len())
            .min_by_key(|&i| outcome_rank(&reports[i].outcome))
            .expect("strategies non-empty");
        (None, reports[best].clone())
    };
    RaceReport {
        winner,
        report,
        reports: strategies.iter().copied().zip(reports).collect(),
    }
}

/// Severity order for the no-decisive-verdict fallback: a broken lock
/// outranks a held defense outranks an inconclusive run.
fn outcome_rank(outcome: &AttackOutcome) -> u8 {
    match outcome {
        AttackOutcome::KeyFound(_) => 0,
        AttackOutcome::WrongKey(_) => 1,
        AttackOutcome::Cns => 2,
        AttackOutcome::Fail => 3,
        AttackOutcome::Timeout => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cutelock_circuits::s27::s27;
    use cutelock_core::baselines::XorLock;
    use cutelock_core::str_lock::{CuteLockStr, CuteLockStrConfig};
    use cutelock_sat::Lit;

    fn quick_budget() -> AttackBudget {
        AttackBudget {
            timeout: std::time::Duration::from_secs(30),
            max_bound: 4,
            max_iterations: 64,
            conflict_budget: Some(500_000),
            ..AttackBudget::default()
        }
    }

    /// A PHP(n+1, n) instance loaded into a fresh solver.
    fn pigeonhole_solver(holes: usize) -> Solver {
        let pigeons = holes + 1;
        let mut s = Solver::new();
        let var: Vec<Vec<cutelock_sat::Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for p in &var {
            let cl: Vec<Lit> = p.iter().map(|&v| Lit::positive(v)).collect();
            s.add_clause(&cl);
        }
        for h in 0..holes {
            let column: Vec<Lit> = var.iter().map(|p| Lit::negative(p[h])).collect();
            for (i, &l1) in column.iter().enumerate() {
                for &l2 in column.iter().skip(i + 1) {
                    s.add_clause(&[l1, l2]);
                }
            }
        }
        s
    }

    #[test]
    fn race_agrees_with_single_on_verdicts() {
        for threads in [1, 2, 4] {
            let mut s = pigeonhole_solver(5);
            let p = Portfolio::new(4, threads);
            assert_eq!(p.race(&mut s), SatResult::Unsat, "{threads} threads");
        }
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::positive(a), Lit::positive(b)]);
        let p = Portfolio::new(4, 2);
        assert_eq!(p.race(&mut s), SatResult::Sat);
    }

    #[test]
    fn race_model_is_thread_count_independent() {
        // The winner (and hence the adopted model) must be identical for
        // any worker count — the core determinism contract.
        let mut reference: Option<Vec<bool>> = None;
        for threads in [1, 2, 4] {
            let mut s = Solver::new();
            let vars: Vec<_> = (0..12).map(|_| s.new_var()).collect();
            for w in vars.windows(2) {
                s.add_clause(&[Lit::positive(w[0]), Lit::positive(w[1])]);
            }
            s.add_clause(&[Lit::negative(vars[0]), Lit::negative(vars[11])]);
            let p = Portfolio::new(4, threads);
            assert_eq!(p.race(&mut s), SatResult::Sat);
            let model: Vec<bool> = vars.iter().map(|&v| s.value(v) == Some(true)).collect();
            match &reference {
                None => reference = Some(model),
                Some(m) => assert_eq!(&model, m, "{threads} threads"),
            }
        }
    }

    #[test]
    fn race_respects_the_conflict_budget_cap() {
        // A hard instance with a tiny budget must surrender with Unknown,
        // and the pre-race budget must survive on the main solver.
        let mut s = pigeonhole_solver(9);
        s.set_conflict_budget(Some(50));
        let p = Portfolio {
            epoch_base: 10,
            ..Portfolio::new(3, 2)
        };
        assert_eq!(p.race(&mut s), SatResult::Unknown);
        assert_eq!(s.conflict_budget(), Some(50));
    }

    #[test]
    fn race_restores_budget_on_the_winner() {
        let mut s = pigeonhole_solver(4);
        s.set_conflict_budget(Some(400_000));
        let p = Portfolio::new(4, 2);
        assert_eq!(p.race(&mut s), SatResult::Unsat);
        assert_eq!(s.conflict_budget(), Some(400_000));
    }

    #[test]
    fn raised_stop_flag_preempts_the_race() {
        let stop = Arc::new(AtomicBool::new(true));
        let mut s = pigeonhole_solver(4);
        let p = Portfolio::new(4, 2).with_stop(stop);
        assert_eq!(p.race(&mut s), SatResult::Unknown);
    }

    #[test]
    fn single_portfolio_is_transparent() {
        let mut raced = pigeonhole_solver(5);
        let mut plain = pigeonhole_solver(5);
        let p = Portfolio::single();
        assert_eq!(p.race(&mut raced), plain.solve());
        assert_eq!(raced.stats().conflicts, plain.stats().conflicts);
    }

    #[test]
    fn sharing_on_a_single_portfolio_is_transparent() {
        // k <= 1 never reaches an epoch barrier: sharing must be a no-op.
        let mut raced = pigeonhole_solver(5);
        let mut plain = pigeonhole_solver(5);
        let p = Portfolio::single().with_share(true);
        assert_eq!(p.race(&mut raced), plain.solve());
        assert_eq!(raced.stats().conflicts, plain.stats().conflicts);
        assert_eq!(p.share_stats(), (0, 0, 0));
    }

    #[test]
    fn sharing_race_is_thread_count_independent() {
        // With sharing on, the adopted winner's full trajectory AND the
        // sharing ledger must be identical for any worker count — the
        // tentpole determinism contract of the clause exchange.
        let mut reference: Option<(u64, (u64, u64, u64))> = None;
        for threads in [1, 2, 4] {
            let mut s = pigeonhole_solver(6);
            // A small epoch base forces several no-winner epochs, so the
            // exchange actually fires on this instance.
            let p = Portfolio {
                epoch_base: 25,
                ..Portfolio::new(4, threads)
            }
            .with_share(true);
            assert_eq!(p.race(&mut s), SatResult::Unsat, "{threads} threads");
            let ledger = p.share_stats();
            assert!(
                ledger.0 > 0 && ledger.1 > 0,
                "sharing should fire: {ledger:?}"
            );
            let fp = (s.stats().conflicts, ledger);
            match &reference {
                None => reference = Some(fp),
                Some(r) => assert_eq!(&fp, r, "{threads} threads"),
            }
        }
    }

    #[test]
    fn sharing_race_preserves_sat_verdicts_and_models() {
        let mut reference: Option<Vec<bool>> = None;
        for threads in [1, 2, 4] {
            let mut s = Solver::new();
            let vars: Vec<_> = (0..12).map(|_| s.new_var()).collect();
            for w in vars.windows(2) {
                s.add_clause(&[Lit::positive(w[0]), Lit::positive(w[1])]);
            }
            s.add_clause(&[Lit::negative(vars[0]), Lit::negative(vars[11])]);
            let p = Portfolio::new(4, threads).with_share(true);
            assert_eq!(p.race(&mut s), SatResult::Sat);
            let model: Vec<bool> = vars.iter().map(|&v| s.value(v) == Some(true)).collect();
            match &reference {
                None => reference = Some(model),
                Some(m) => assert_eq!(&model, m, "{threads} threads"),
            }
        }
    }

    #[test]
    fn sharing_ledger_accumulates_across_clones() {
        // Spec clones share one ledger, so an attack's per-query races all
        // report into the portfolio the caller holds.
        let p = Portfolio {
            epoch_base: 25,
            ..Portfolio::new(4, 2)
        }
        .with_share(true);
        let clone = p.clone();
        let mut s = pigeonhole_solver(6);
        assert_eq!(clone.race(&mut s), SatResult::Unsat);
        assert_eq!(p.share_stats(), clone.share_stats());
        assert!(p.share_stats().0 > 0);
    }

    #[test]
    fn attack_race_breaks_a_breakable_lock() {
        let lc = XorLock::new(4, 3).lock(&s27()).unwrap();
        let race = portfolio_attack(&lc, &quick_budget(), &Strategy::ALL, 3, 1);
        assert!(
            matches!(race.report.outcome, AttackOutcome::KeyFound(_)),
            "got {}",
            race.report.outcome
        );
        assert!(race.winner.is_some());
        assert_eq!(race.reports.len(), 3);
    }

    #[test]
    fn attack_race_holds_on_cutelock() {
        let lc = CuteLockStr::new(CuteLockStrConfig {
            keys: 4,
            key_bits: 2,
            locked_ffs: 1,
            seed: 6,
            schedule: None,
            ..Default::default()
        })
        .lock(&s27())
        .unwrap();
        let race = portfolio_attack(&lc, &quick_budget(), &Strategy::ALL, 2, 1);
        assert!(
            race.report.outcome.defense_held(),
            "got {}",
            race.report.outcome
        );
    }

    #[test]
    fn attack_race_with_no_strategies_fails_cleanly() {
        let lc = XorLock::new(2, 3).lock(&s27()).unwrap();
        let race = portfolio_attack(&lc, &quick_budget(), &[], 2, 1);
        assert!(race.winner.is_none());
        assert_eq!(race.report.outcome, AttackOutcome::Fail);
    }

    #[test]
    fn wrong_key_and_fail_do_not_claim_the_race() {
        // A refuted key or a Fail settles nothing — only a verified key or
        // a CNS proof may cancel the other strategies.
        assert!(is_decisive(&AttackOutcome::KeyFound(
            cutelock_core::KeyValue::from_u64(1, 2)
        )));
        assert!(is_decisive(&AttackOutcome::Cns));
        assert!(!is_decisive(&AttackOutcome::WrongKey(
            cutelock_core::KeyValue::from_u64(1, 2)
        )));
        assert!(!is_decisive(&AttackOutcome::Fail));
        assert!(!is_decisive(&AttackOutcome::Timeout));
    }

    #[test]
    fn attack_race_threads_inner_portfolio_into_strategies() {
        // inner_k > 1 routes every strategy's queries through the
        // query-level race; the verdict must be unaffected.
        let lc = XorLock::new(4, 3).lock(&s27()).unwrap();
        let race = portfolio_attack(&lc, &quick_budget(), &Strategy::ALL, 3, 3);
        assert!(
            matches!(race.report.outcome, AttackOutcome::KeyFound(_)),
            "got {}",
            race.report.outcome
        );
    }

    #[test]
    fn strategy_names_are_cli_modes() {
        assert_eq!(Strategy::ScanSat.name(), "sat");
        assert_eq!(Strategy::Kc2.name(), "kc2");
        assert_eq!(Strategy::BmcInt.name(), "int");
    }
}

//! The pure job-scheduler core: a channel-free, socket-free [`JobQueue`]
//! plus a [`WorkerPool`] of OS threads draining it.
//!
//! Design constraints, in the order they shaped the code:
//!
//! * **Fairness.** Jobs are admitted FIFO per *lane*: [`Lane::Express`]
//!   (cheap, latency-sensitive — `verify`) and [`Lane::Batch`] (open-ended
//!   — attacks, hard SAT instances). When the pool has more than one
//!   worker, worker 0 serves the express lane **only**, so a
//!   one-second verify never queues behind an hour-long attack no matter
//!   how many batch jobs are in flight. The remaining workers drain
//!   express first, then batch. A single-worker pool degrades to
//!   express-before-batch priority.
//! * **Cancellation.** Every job owns a stop flag
//!   (`Arc<AtomicBool>`) that its work closure is handed at start; attack
//!   closures install it as the portfolio/solver stop slot
//!   ([`Solver::set_stop`](cutelock_sat::Solver::set_stop)), so a
//!   `CANCEL` on a *running* job unwinds within one portfolio epoch —
//!   the next propagate/decide round at worst. A `CANCEL` on a *queued*
//!   job retires it immediately without running it.
//! * **Memoization.** A submit may carry a cache key (the circuit
//!   fingerprint folded with the spec — see
//!   [`LockedCircuit::fingerprint`](cutelock_core::LockedCircuit::fingerprint));
//!   a key whose result is already cached completes the job instantly
//!   ([`JobStatus::cached`]), and a successful run populates the cache.
//!   Nondeterministic jobs (the attack-level race) must submit without a
//!   key — the cache stores only results that are functions of their spec.
//! * **Purity.** Nothing here touches sockets or stdio: the TCP layer in
//!   [`crate::server`] is a thin framing shim over these same methods,
//!   which is what makes the scheduler unit-testable in-process.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Admission lane of a job: which queue it waits in and which workers may
/// pick it up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Cheap, latency-sensitive work (verification); never starved behind
    /// batch jobs.
    Express,
    /// Open-ended work (attacks, hard SAT instances).
    Batch,
}

impl Lane {
    /// Wire/display name of the lane.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Express => "express",
            Lane::Batch => "batch",
        }
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing the job's closure.
    Running,
    /// Finished with a result.
    Done,
    /// Cancelled — either before it ran or mid-run via its stop flag.
    Cancelled,
    /// The closure returned an error.
    Failed,
}

impl JobState {
    /// Wire/display name of the state.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// True when the job will never change state again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::Failed
        )
    }
}

/// A job's work: a closure receiving the job's stop flag (to be installed
/// into whatever long-running machinery the job drives) and returning a
/// single-line result string or a single-line error.
pub type JobWork = Box<dyn FnOnce(&Arc<AtomicBool>) -> Result<String, String> + Send>;

/// A parsed, ready-to-enqueue job request (built by [`crate::request`]).
///
/// `Debug` elides the work closure.
pub struct SubmitRequest {
    /// Human-readable label echoed in `STATUS` lines.
    pub label: String,
    /// Admission lane.
    pub lane: Lane,
    /// Result-cache key; `None` opts out (nondeterministic jobs must).
    pub cache_key: Option<u64>,
    /// The work itself.
    pub work: JobWork,
}

impl std::fmt::Debug for SubmitRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubmitRequest")
            .field("label", &self.label)
            .field("lane", &self.lane)
            .field("cache_key", &self.cache_key)
            .finish_non_exhaustive()
    }
}

/// Snapshot of one job, as reported by [`JobQueue::status`].
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// The job's queue-assigned id.
    pub id: u64,
    /// Label from the submit.
    pub label: String,
    /// Admission lane.
    pub lane: Lane,
    /// Current lifecycle state.
    pub state: JobState,
    /// True when the result was served from the cache without running.
    pub cached: bool,
    /// Terminal result: `Ok(line)` for done, `Err(line)` for failed;
    /// `None` while pending or when cancelled.
    pub result: Option<Result<String, String>>,
}

struct Job {
    label: String,
    lane: Lane,
    state: JobState,
    cached: bool,
    cancel_requested: bool,
    stop: Arc<AtomicBool>,
    work: Option<JobWork>,
    cache_key: Option<u64>,
    result: Option<Result<String, String>>,
    /// Index of the worker that ran the job (fairness introspection).
    ran_on: Option<usize>,
}

#[derive(Default)]
struct QueueState {
    next_id: u64,
    jobs: HashMap<u64, Job>,
    express: VecDeque<u64>,
    batch: VecDeque<u64>,
    cache: HashMap<u64, String>,
    cache_hits: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signalled when a job is enqueued or shutdown begins.
    work_ready: Condvar,
    /// Signalled when any job reaches a terminal state.
    job_done: Condvar,
}

/// The scheduler: admission queues, job table, result cache. Cheap to
/// clone (all clones share one state).
#[derive(Clone)]
pub struct JobQueue {
    shared: Arc<Shared>,
}

impl Default for JobQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl JobQueue {
    /// An empty queue with an empty cache.
    pub fn new() -> Self {
        Self {
            shared: Arc::new(Shared {
                state: Mutex::new(QueueState::default()),
                work_ready: Condvar::new(),
                job_done: Condvar::new(),
            }),
        }
    }

    /// Admits a job and returns its id. If the request carries a cache key
    /// whose result is already cached, the job is born [`JobState::Done`]
    /// with [`JobStatus::cached`] set and never reaches a worker.
    pub fn submit(&self, req: SubmitRequest) -> u64 {
        let mut st = self.shared.state.lock().unwrap();
        st.next_id += 1;
        let id = st.next_id;
        let hit = req.cache_key.and_then(|k| st.cache.get(&k).cloned());
        let cached = hit.is_some();
        if cached {
            st.cache_hits += 1;
        }
        let job = Job {
            label: req.label,
            lane: req.lane,
            state: if cached {
                JobState::Done
            } else {
                JobState::Queued
            },
            cached,
            cancel_requested: false,
            stop: Arc::new(AtomicBool::new(false)),
            work: if cached { None } else { Some(req.work) },
            cache_key: req.cache_key,
            result: hit.map(Ok),
            ran_on: None,
        };
        st.jobs.insert(id, job);
        if cached {
            self.shared.job_done.notify_all();
        } else {
            match st.jobs[&id].lane {
                Lane::Express => st.express.push_back(id),
                Lane::Batch => st.batch.push_back(id),
            }
            self.shared.work_ready.notify_all();
        }
        id
    }

    /// Snapshot of a job, or `None` for an unknown id.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        let st = self.shared.state.lock().unwrap();
        st.jobs.get(&id).map(|j| JobStatus {
            id,
            label: j.label.clone(),
            lane: j.lane,
            state: j.state,
            cached: j.cached,
            result: j.result.clone(),
        })
    }

    /// Blocks until the job reaches a terminal state, then returns its
    /// snapshot (`None` for an unknown id).
    pub fn wait(&self, id: u64) -> Option<JobStatus> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            match st.jobs.get(&id) {
                None => return None,
                Some(j) if j.state.is_terminal() => {
                    return Some(JobStatus {
                        id,
                        label: j.label.clone(),
                        lane: j.lane,
                        state: j.state,
                        cached: j.cached,
                        result: j.result.clone(),
                    })
                }
                Some(_) => st = self.shared.job_done.wait(st).unwrap(),
            }
        }
    }

    /// Requests cancellation. A queued job retires immediately
    /// ([`JobState::Cancelled`]); a running job has its stop flag raised —
    /// the attack unwinds within one portfolio epoch and the worker marks
    /// it cancelled on return. Terminal jobs are left as they are.
    /// Returns the state observed *after* the request, or `None` for an
    /// unknown id.
    pub fn cancel(&self, id: u64) -> Option<JobState> {
        let mut st = self.shared.state.lock().unwrap();
        let job = st.jobs.get_mut(&id)?;
        match job.state {
            JobState::Queued => {
                job.state = JobState::Cancelled;
                job.work = None;
                let lane = job.lane;
                match lane {
                    Lane::Express => st.express.retain(|&q| q != id),
                    Lane::Batch => st.batch.retain(|&q| q != id),
                }
                self.shared.job_done.notify_all();
                Some(JobState::Cancelled)
            }
            JobState::Running => {
                job.cancel_requested = true;
                job.stop.store(true, Ordering::Relaxed);
                Some(JobState::Running)
            }
            terminal => Some(terminal),
        }
    }

    /// Begins shutdown: queued jobs are cancelled, running jobs have their
    /// stop flags raised, workers exit once idle. Idempotent.
    pub fn shutdown(&self) {
        let mut st = self.shared.state.lock().unwrap();
        st.shutdown = true;
        let mut queued: Vec<u64> = st.express.drain(..).collect();
        queued.extend(st.batch.drain(..));
        for id in queued {
            if let Some(job) = st.jobs.get_mut(&id) {
                job.state = JobState::Cancelled;
                job.work = None;
            }
        }
        for job in st.jobs.values_mut() {
            if job.state == JobState::Running {
                job.cancel_requested = true;
                job.stop.store(true, Ordering::Relaxed);
            }
        }
        self.shared.work_ready.notify_all();
        self.shared.job_done.notify_all();
    }

    /// True once [`JobQueue::shutdown`] has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.state.lock().unwrap().shutdown
    }

    /// Number of submits served straight from the result cache.
    pub fn cache_hits(&self) -> u64 {
        self.shared.state.lock().unwrap().cache_hits
    }

    /// The worker index that executed a job (`None` while pending or when
    /// the job never ran). Exposed for fairness assertions in tests and
    /// the daemon's status lines.
    pub fn ran_on(&self, id: u64) -> Option<usize> {
        self.shared.state.lock().unwrap().jobs.get(&id)?.ran_on
    }

    /// Spawns `workers` OS threads draining this queue (at least one).
    /// Worker 0 is the express-reserved worker when `workers > 1`.
    pub fn spawn_workers(&self, workers: usize) -> WorkerPool {
        let n = workers.max(1);
        let handles = (0..n)
            .map(|i| {
                let q = self.clone();
                std::thread::Builder::new()
                    .name(format!("cutelock-job-{i}"))
                    .spawn(move || q.worker_loop(i, n))
                    .expect("spawn job worker")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Pops the next job this worker may run, blocking until one exists or
    /// shutdown. Returns `(id, work, stop)`.
    fn next_job(&self, worker: usize, workers: usize) -> Option<(u64, JobWork, Arc<AtomicBool>)> {
        let express_only = workers > 1 && worker == 0;
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if st.shutdown {
                return None;
            }
            let id = match st.express.pop_front() {
                Some(id) => Some(id),
                None if express_only => None,
                None => st.batch.pop_front(),
            };
            if let Some(id) = id {
                let job = st.jobs.get_mut(&id).expect("queued job exists");
                job.state = JobState::Running;
                job.ran_on = Some(worker);
                let work = job.work.take().expect("queued job has work");
                let stop = Arc::clone(&job.stop);
                return Some((id, work, stop));
            }
            st = self.shared.work_ready.wait(st).unwrap();
        }
    }

    fn worker_loop(&self, worker: usize, workers: usize) {
        while let Some((id, work, stop)) = self.next_job(worker, workers) {
            // Run outside the lock — this is the long part.
            let result = work(&stop);
            let mut st = self.shared.state.lock().unwrap();
            let cancelled = st
                .jobs
                .get(&id)
                .map(|j| j.cancel_requested)
                .unwrap_or(false)
                || st.shutdown && stop.load(Ordering::Relaxed);
            if let Some(job) = st.jobs.get_mut(&id) {
                if cancelled {
                    job.state = JobState::Cancelled;
                    job.result = None;
                } else {
                    job.state = if result.is_ok() {
                        JobState::Done
                    } else {
                        JobState::Failed
                    };
                    let cache_entry = match (job.cache_key, &result) {
                        (Some(key), Ok(line)) => Some((key, line.clone())),
                        _ => None,
                    };
                    job.result = Some(result);
                    if let Some((key, line)) = cache_entry {
                        st.cache.insert(key, line);
                    }
                }
            }
            self.shared.job_done.notify_all();
        }
    }
}

/// Join guard for the worker threads of one [`JobQueue`].
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Number of workers.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// True when the pool has no workers (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Waits for every worker to exit (they do so after
    /// [`JobQueue::shutdown`]).
    pub fn join(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ok_job(label: &str, line: &str) -> SubmitRequest {
        let line = line.to_string();
        SubmitRequest {
            label: label.into(),
            lane: Lane::Batch,
            cache_key: None,
            work: Box::new(move |_| Ok(line)),
        }
    }

    /// A job that parks until its stop flag is raised, then reports how it
    /// exited — the scheduler-level stand-in for a cancellable attack.
    fn parked_job(label: &str, lane: Lane) -> SubmitRequest {
        SubmitRequest {
            label: label.into(),
            lane,
            cache_key: None,
            work: Box::new(|stop| {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok("stopped".into())
            }),
        }
    }

    #[test]
    fn fifo_within_a_lane() {
        let q = JobQueue::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4 {
            let order = Arc::clone(&order);
            q.submit(SubmitRequest {
                label: format!("j{i}"),
                lane: Lane::Batch,
                cache_key: None,
                work: Box::new(move |_| {
                    order.lock().unwrap().push(i);
                    Ok(String::new())
                }),
            });
        }
        let pool = q.spawn_workers(1);
        for id in 1..=4 {
            assert_eq!(q.wait(id).unwrap().state, JobState::Done);
        }
        q.shutdown();
        pool.join();
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn express_jobs_bypass_a_busy_batch_lane() {
        let q = JobQueue::new();
        // Two workers: worker 0 is express-reserved. Saturate the batch
        // capacity (worker 1) with a parked job, then submit an express
        // job — it must complete while the batch job is still running.
        let blocker = q.submit(parked_job("blocker", Lane::Batch));
        let pool = q.spawn_workers(2);
        // Wait until the blocker is actually running.
        while q.status(blocker).unwrap().state != JobState::Running {
            std::thread::sleep(Duration::from_millis(1));
        }
        let fast = q.submit(SubmitRequest {
            label: "verify".into(),
            lane: Lane::Express,
            cache_key: None,
            work: Box::new(|_| Ok("verified".into())),
        });
        let st = q.wait(fast).unwrap();
        assert_eq!(st.state, JobState::Done);
        assert_eq!(q.ran_on(fast), Some(0), "express must run on worker 0");
        assert_eq!(
            q.status(blocker).unwrap().state,
            JobState::Running,
            "the batch job must still be running — express did not queue behind it"
        );
        q.cancel(blocker);
        assert_eq!(q.wait(blocker).unwrap().state, JobState::Cancelled);
        q.shutdown();
        pool.join();
    }

    #[test]
    fn queued_job_cancels_without_running() {
        let q = JobQueue::new();
        // No workers: the job can never start.
        let id = q.submit(ok_job("never", "x"));
        assert_eq!(q.cancel(id), Some(JobState::Cancelled));
        let st = q.status(id).unwrap();
        assert_eq!(st.state, JobState::Cancelled);
        assert!(st.result.is_none());
    }

    #[test]
    fn running_job_cancels_via_its_stop_flag() {
        let q = JobQueue::new();
        let id = q.submit(parked_job("parked", Lane::Batch));
        let pool = q.spawn_workers(1);
        while q.status(id).unwrap().state != JobState::Running {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(q.cancel(id), Some(JobState::Running));
        let st = q.wait(id).unwrap();
        // The closure returned Ok("stopped") but the cancel request wins.
        assert_eq!(st.state, JobState::Cancelled);
        assert!(st.result.is_none());
        q.shutdown();
        pool.join();
    }

    #[test]
    fn cache_hit_completes_without_a_worker() {
        let q = JobQueue::new();
        let key = Some(0xfeed);
        let first = q.submit(SubmitRequest {
            label: "a".into(),
            lane: Lane::Batch,
            cache_key: key,
            work: Box::new(|_| Ok("computed".into())),
        });
        let pool = q.spawn_workers(1);
        assert_eq!(q.wait(first).unwrap().result, Some(Ok("computed".into())));
        q.shutdown();
        pool.join();
        // Workers are gone; an identical resubmit must still complete.
        // (Shutdown blocks new *work*, not cache lookups — mirrors the
        // daemon, where submits stop at the socket layer instead.)
        let second = q.submit(SubmitRequest {
            label: "a again".into(),
            lane: Lane::Batch,
            cache_key: key,
            work: Box::new(|_| panic!("must not run")),
        });
        let st = q.status(second).unwrap();
        assert_eq!(st.state, JobState::Done);
        assert!(st.cached);
        assert_eq!(st.result, Some(Ok("computed".into())));
        assert_eq!(q.cache_hits(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide_and_failures_are_not_cached() {
        let q = JobQueue::new();
        let pool = q.spawn_workers(1);
        let fail = q.submit(SubmitRequest {
            label: "fails".into(),
            lane: Lane::Batch,
            cache_key: Some(1),
            work: Box::new(|_| Err("boom".into())),
        });
        assert_eq!(q.wait(fail).unwrap().state, JobState::Failed);
        let retry = q.submit(SubmitRequest {
            label: "retries".into(),
            lane: Lane::Batch,
            cache_key: Some(1),
            work: Box::new(|_| Ok("recovered".into())),
        });
        let st = q.wait(retry).unwrap();
        assert!(!st.cached, "a failure must not populate the cache");
        assert_eq!(st.result, Some(Ok("recovered".into())));
        let other = q.submit(SubmitRequest {
            label: "other key".into(),
            lane: Lane::Batch,
            cache_key: Some(2),
            work: Box::new(|_| Ok("different".into())),
        });
        let st = q.wait(other).unwrap();
        assert!(!st.cached, "distinct keys must not hit");
        q.shutdown();
        pool.join();
    }

    #[test]
    fn shutdown_cancels_queued_jobs_and_stops_workers() {
        let q = JobQueue::new();
        let queued = q.submit(ok_job("queued", "x"));
        q.shutdown();
        assert_eq!(q.status(queued).unwrap().state, JobState::Cancelled);
        // Workers spawned after shutdown exit immediately.
        let pool = q.spawn_workers(3);
        pool.join();
        assert!(q.is_shutting_down());
    }
}

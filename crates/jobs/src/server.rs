//! The TCP framing shim: a `std::net::TcpListener` line protocol over the
//! pure [`JobQueue`].
//!
//! One request per line, one response per line — no framing beyond `\n`,
//! no async runtime (the build environment is offline; `std` threads and
//! a non-blocking accept loop suffice for a lab daemon):
//!
//! ```text
//! SUBMIT attack --mode int --scheme xor --key-bits 4   →  OK id=1
//! STATUS 1                                             →  OK id=1 state=running lane=batch worker=1 label=attack int s27 xor-lock
//! RESULT 1                                             →  WAIT id=1 state=running
//! RESULT 1 --wait                                      →  OK id=1 state=done cached=false verdict=Equal(0010) …
//! CANCEL 1                                             →  OK id=1 cancel-requested
//! SHUTDOWN                                             →  OK shutting-down
//! ```
//!
//! Responses start `OK`, `WAIT`, or `ERR`. Every connection runs on its
//! own thread; all of them share the one queue, so two clients submitting
//! concurrently see one job-id space, one cache, one fairness lane — the
//! scheduler semantics live entirely in [`crate::queue`], and this module
//! only parses verbs and prints snapshots.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::queue::{JobQueue, JobStatus, WorkerPool};
use crate::request::{parse_submit, Limits};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the job queue (min 1; worker 0 is the
    /// express-reserved fairness worker when more than one).
    pub workers: usize,
    /// Ceilings imposed on submitted jobs.
    pub limits: Limits,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            limits: Limits::default(),
        }
    }
}

/// A bound, not-yet-serving daemon. [`Server::bind`] then [`Server::run`];
/// `run` returns after a client sends `SHUTDOWN`.
pub struct Server {
    listener: TcpListener,
    queue: JobQueue,
    pool: WorkerPool,
    limits: Limits,
}

impl Server {
    /// Binds the listener (use port 0 for an ephemeral port) and spawns
    /// the worker pool. The queue starts empty.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let queue = JobQueue::new();
        let pool = queue.spawn_workers(config.workers);
        Ok(Self {
            listener,
            queue,
            pool,
            limits: config.limits,
        })
    }

    /// The bound address (the ephemeral port, after binding to port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until a client issues `SHUTDOWN`, then joins the
    /// workers (letting any still-running job unwind through its raised
    /// stop flag) and returns.
    pub fn run(self) -> std::io::Result<()> {
        // Non-blocking accept so the loop can observe shutdown promptly.
        self.listener.set_nonblocking(true)?;
        let mut connections = Vec::new();
        let mut streams: Vec<TcpStream> = Vec::new();
        loop {
            if self.queue.is_shutting_down() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // Keep a handle so shutdown can sever connections that
                    // sit idle in a blocking read.
                    if let Ok(handle) = stream.try_clone() {
                        streams.push(handle);
                    }
                    let queue = self.queue.clone();
                    let limits = self.limits.clone();
                    connections.push(std::thread::spawn(move || {
                        // A dropped/failed connection only ends that
                        // client's session; the daemon carries on.
                        let _ = serve_connection(stream, &queue, &limits);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        // Disconnect every client that is still attached: their threads
        // are blocked reading the next request and would otherwise pin
        // the daemon open for as long as any client lingers.
        for s in &streams {
            let _ = s.shutdown(Shutdown::Both);
        }
        for c in connections {
            let _ = c.join();
        }
        self.pool.join();
        Ok(())
    }
}

/// One `STATUS`/`RESULT` snapshot as a single response line.
fn status_line(queue: &JobQueue, st: &JobStatus) -> String {
    let mut line = format!(
        "OK id={} state={} lane={} cached={}",
        st.id,
        st.state.name(),
        st.lane.name(),
        st.cached
    );
    if let Some(worker) = queue.ran_on(st.id) {
        line.push_str(&format!(" worker={worker}"));
    }
    match &st.result {
        Some(Ok(text)) => line.push_str(&format!(" {text}")),
        Some(Err(text)) => line.push_str(&format!(" error: {text}")),
        None => {}
    }
    line.push_str(&format!(" label={}", st.label));
    line
}

fn parse_id(operand: &str) -> Result<u64, String> {
    operand
        .split_whitespace()
        .next()
        .ok_or("missing job id".to_string())?
        .parse()
        .map_err(|_| format!("`{}` is not a job id", operand.trim()))
}

/// Handles one request line against the queue; `None` means the
/// connection asked the daemon to shut down (after the returned response
/// in `Some` — shutdown still responds, so the `None` case is encoded as
/// the second tuple element).
fn handle_line(line: &str, queue: &JobQueue, limits: &Limits) -> (String, bool) {
    let line = line.trim();
    let (verb, operand) = match line.split_once(char::is_whitespace) {
        Some((v, rest)) => (v, rest.trim()),
        None => (line, ""),
    };
    match verb {
        "SUBMIT" => match parse_submit(operand, limits) {
            Ok(req) => {
                let id = queue.submit(req);
                (format!("OK id={id}"), false)
            }
            Err(e) => (format!("ERR {e}"), false),
        },
        "STATUS" => match parse_id(operand) {
            Ok(id) => match queue.status(id) {
                Some(st) => (status_line(queue, &st), false),
                None => (format!("ERR no such job {id}"), false),
            },
            Err(e) => (format!("ERR {e}"), false),
        },
        "RESULT" => match parse_id(operand) {
            Ok(id) => {
                let wait = operand.split_whitespace().any(|t| t == "--wait");
                let st = if wait {
                    queue.wait(id)
                } else {
                    queue.status(id)
                };
                match st {
                    Some(st) if st.state.is_terminal() => (status_line(queue, &st), false),
                    Some(st) => (
                        format!("WAIT id={} state={}", st.id, st.state.name()),
                        false,
                    ),
                    None => (format!("ERR no such job {id}"), false),
                }
            }
            Err(e) => (format!("ERR {e}"), false),
        },
        "CANCEL" => match parse_id(operand) {
            Ok(id) => match queue.cancel(id) {
                Some(crate::queue::JobState::Cancelled) => (format!("OK id={id} cancelled"), false),
                Some(crate::queue::JobState::Running) => {
                    (format!("OK id={id} cancel-requested"), false)
                }
                Some(state) => (
                    format!("OK id={id} already-terminal state={}", state.name()),
                    false,
                ),
                None => (format!("ERR no such job {id}"), false),
            },
            Err(e) => (format!("ERR {e}"), false),
        },
        "SHUTDOWN" => {
            queue.shutdown();
            ("OK shutting-down".to_string(), true)
        }
        "" => ("ERR empty request".to_string(), false),
        other => (
            format!("ERR unknown verb `{other}` (SUBMIT|STATUS|RESULT|CANCEL|SHUTDOWN)"),
            false,
        ),
    }
}

fn serve_connection(stream: TcpStream, queue: &JobQueue, limits: &Limits) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        let (response, shutdown) = handle_line(&line, queue, limits);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shutdown {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The protocol layer, exercised without sockets: `handle_line` is the
    /// whole framing logic, so driving it directly pins the grammar.
    #[test]
    fn protocol_round_trip_without_sockets() {
        let queue = JobQueue::new();
        let pool = queue.spawn_workers(1);
        let limits = Limits::default();
        let (r, _) = handle_line("SUBMIT solve --php 3", &queue, &limits);
        assert_eq!(r, "OK id=1");
        let (r, _) = handle_line("RESULT 1 --wait", &queue, &limits);
        assert!(r.contains("state=done") && r.contains("unsat php=3"), "{r}");
        let (r, _) = handle_line("STATUS 1", &queue, &limits);
        assert!(r.contains("worker=0"), "{r}");
        let (r, _) = handle_line("STATUS 99", &queue, &limits);
        assert!(r.starts_with("ERR"), "{r}");
        let (r, _) = handle_line("SUBMIT attack --mode warp", &queue, &limits);
        assert!(r.starts_with("ERR"), "{r}");
        let (r, _) = handle_line("FROB 1", &queue, &limits);
        assert!(r.starts_with("ERR unknown verb"), "{r}");
        let (r, done) = handle_line("SHUTDOWN", &queue, &limits);
        assert_eq!(r, "OK shutting-down");
        assert!(done);
        pool.join();
    }

    #[test]
    fn cancel_before_run_reports_cancelled() {
        // No workers: the job stays queued until cancelled.
        let queue = JobQueue::new();
        let limits = Limits::default();
        handle_line("SUBMIT solve --php 10", &queue, &limits);
        let (r, _) = handle_line("CANCEL 1", &queue, &limits);
        assert_eq!(r, "OK id=1 cancelled");
        let (r, _) = handle_line("RESULT 1", &queue, &limits);
        assert!(r.contains("state=cancelled"), "{r}");
    }
}

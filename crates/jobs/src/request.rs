//! The `SUBMIT` grammar: one line of text → a [`SubmitRequest`] whose work
//! closure drives the workspace pipeline through the unified
//! [`AttackSpec`] door.
//!
//! Three job kinds:
//!
//! * `SUBMIT attack --mode <m> [--circuit s27] [--scheme str|xor|ttlock|
//!   dklock|sled] [--keys K] [--key-bits KI] [--ffs N] [--seed S]
//!   [--timeout SECS] [--portfolio K] [--threads N] [--share on|off]
//!   [--share-cap N] [--simplify on|off]` — locks a built-in benchmark
//!   deterministically from the given parameters, builds an
//!   [`AttackSpec`], and runs [`run_attack`]. Batch lane. Cached by
//!   (circuit fingerprint, strategy, budget, portfolio width, share
//!   on/off, simplify on/off) for every deterministic strategy; `--mode
//!   race` is wall-clock nondeterministic and is never cached. With
//!   `--share on` the result line grows a deterministic
//!   `shared=exported/imported/dups` field (DETERMINISM.md Rule 7), so
//!   cached replays stay byte-identical. `--simplify` (default `on`) runs
//!   the netlist simplification engine in front of the encoder; it can
//!   change which wrong key survives a capped search, so it is keyed like
//!   `--share`.
//! * `SUBMIT verify [--circuit s27] [--scheme …] [--frames N]
//!   [--conflicts N] …` — SAT-proves the locked instance cycle-exact
//!   against its original under its own schedule
//!   ([`prove_locked_equivalence`]). Express lane: verifies are the cheap,
//!   latency-sensitive jobs the fairness lane exists for. Cached.
//! * `SUBMIT solve --php N [--conflicts N]` — a pigeonhole SAT instance
//!   (`N+1` pigeons, `N` holes: UNSAT, and exponentially hard for
//!   resolution). The daemon's deterministic long-running job: `--php 12`
//!   runs for minutes yet cancels within milliseconds through the solver's
//!   stop slot — which is what the serve E2E test exercises. Cached.
//!
//! The attacker-side rule from `docs/DETERMINISM.md` shapes the cache key:
//! worker-thread counts (`--threads`) never change a result, so they stay
//! *out* of the key; anything that can change a verdict (strategy, budget,
//! portfolio width, share on/off, circuit, lock parameters) goes in.
//! `--share-cap` is a tuning knob like `--threads` — it scales the
//! exchange without touching the verdict identity — so it stays out too.

use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use cutelock_attacks::certify::prove_locked_equivalence;
use cutelock_attacks::portfolio::Portfolio;
use cutelock_attacks::{run_attack, AttackBudget, AttackOutcome, AttackSpec, AttackStrategy};
use cutelock_circuits::{iscas89, itc99};
use cutelock_core::baselines::{DkLock, SledLock, TtLock, XorLock};
use cutelock_core::clock::ClockHandle;
use cutelock_core::fingerprint::Fingerprint;
use cutelock_core::str_lock::{CuteLockStr, CuteLockStrConfig};
use cutelock_core::LockedCircuit;
use cutelock_netlist::Netlist;
use cutelock_sat::equiv::EquivResult;
use cutelock_sat::{Lit, SatResult, ShareCap, Solver, Var};

use crate::queue::{Lane, SubmitRequest};

/// Hard ceilings a daemon imposes on submitted work.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Longest budget a job may request, measured on [`Limits::clock`].
    pub max_timeout: Duration,
    /// The clock attack budgets are measured on. Defaults to the wall
    /// clock; a [`VirtualClock`](cutelock_core::clock::VirtualClock)
    /// here makes every deadline in the daemon deterministic — timeouts
    /// fire at an exact solver-conflict count instead of a wall instant.
    pub clock: ClockHandle,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_timeout: Duration::from_secs(3600),
            clock: ClockHandle::wall(),
        }
    }
}

/// Minimal `--flag value` parser for the wire grammar (the CLI has its own
/// in `crates/cli`; the daemon must not depend on the CLI crate).
struct Flags<'a> {
    values: HashMap<&'a str, &'a str>,
}

impl<'a> Flags<'a> {
    fn parse(tokens: &[&'a str]) -> Result<Self, String> {
        let mut values = HashMap::new();
        let mut i = 0;
        while i < tokens.len() {
            let Some(name) = tokens[i].strip_prefix("--") else {
                return Err(format!("expected a --flag, got `{}`", tokens[i]));
            };
            let Some(&value) = tokens.get(i + 1) else {
                return Err(format!("--{name} needs a value"));
            };
            if values.insert(name, value).is_some() {
                return Err(format!("--{name} given twice"));
            }
            i += 2;
        }
        Ok(Self { values })
    }

    fn opt(&self, name: &str) -> Option<&'a str> {
        self.values.get(name).copied()
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.opt(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: `{v}` is not a valid number")),
        }
    }

    fn reject_unknown(&self, known: &[&str]) -> Result<(), String> {
        for &name in self.values.keys() {
            if !known.contains(&name) {
                return Err(format!("unknown flag --{name}"));
            }
        }
        Ok(())
    }
}

/// Looks a benchmark circuit up across the built-in suites.
fn builtin_circuit(name: &str) -> Result<Netlist, String> {
    iscas89(name)
        .or_else(|_| itc99(name))
        .map(|c| c.netlist)
        .map_err(|_| format!("unknown circuit `{name}` (not in iscas89/itc99)"))
}

/// Deterministically locks a built-in circuit from wire parameters —
/// the daemon-side mirror of `cutelock lock`.
fn lock_builtin(flags: &Flags) -> Result<LockedCircuit, String> {
    let circuit = flags.opt("circuit").unwrap_or("s27");
    let scheme = flags.opt("scheme").unwrap_or("str");
    let keys: usize = flags.num("keys", 4)?;
    let ki: usize = flags.num("key-bits", 2)?;
    let ffs: usize = flags.num("ffs", 1)?;
    let seed: u64 = flags.num("seed", 0)?;
    let nl = builtin_circuit(circuit)?;
    let locked = match scheme {
        "str" => CuteLockStr::new(CuteLockStrConfig {
            keys,
            key_bits: ki,
            locked_ffs: ffs,
            seed,
            schedule: None,
            ..Default::default()
        })
        .lock(&nl),
        "xor" => XorLock::new(ki, seed).lock(&nl),
        "ttlock" => TtLock::new(ki, seed).lock(&nl),
        "dklock" => DkLock::new(ki, ki, seed).lock(&nl),
        "sled" => SledLock::new(ki, seed).lock(&nl),
        other => return Err(format!("unknown scheme `{other}`")),
    };
    locked.map_err(|e| e.to_string())
}

/// Folds an attack/verify spec into the circuit fingerprint — the
/// (circuit, scheme, params, seed) cache key. `--threads` and
/// `--share-cap` are deliberately absent: per `docs/DETERMINISM.md`,
/// worker counts never change results, and the share cap is the same kind
/// of tuning knob. Share on/off *is* keyed: the exchange changes the
/// search trajectory (and the result line grows a `shared=` field).
fn attack_cache_key(locked: &LockedCircuit, spec: &AttackSpec) -> u64 {
    let mut fp = Fingerprint::new();
    fp.update_u64(locked.fingerprint());
    fp.update_str("attack");
    fp.update_str(spec.strategy.name());
    fp.update_u64(spec.budget.timeout.as_millis() as u64);
    fp.update_u64(spec.budget.max_bound as u64);
    fp.update_u64(spec.budget.max_iterations as u64);
    fp.update_u64(spec.budget.conflict_budget.unwrap_or(u64::MAX));
    fp.update_u64(spec.portfolio.k as u64);
    fp.update_u64(spec.portfolio.share as u64);
    fp.update_u64(spec.simplify as u64);
    fp.finish()
}

const ATTACK_FLAGS: &[&str] = &[
    "mode",
    "circuit",
    "scheme",
    "keys",
    "key-bits",
    "ffs",
    "seed",
    "timeout",
    "portfolio",
    "threads",
    "share",
    "share-cap",
    "simplify",
];

fn parse_attack(flags: &Flags, limits: &Limits) -> Result<SubmitRequest, String> {
    flags.reject_unknown(ATTACK_FLAGS)?;
    let mode = flags.opt("mode").ok_or("attack needs --mode")?;
    let strategy =
        AttackStrategy::parse(mode).ok_or_else(|| format!("unknown attack mode `{mode}`"))?;
    let locked = lock_builtin(flags)?;
    let timeout: u64 = flags.num("timeout", 60)?;
    let timeout = Duration::from_secs(timeout).min(limits.max_timeout);
    let k: usize = flags.num("portfolio", 1)?;
    let threads: usize = flags.num("threads", 1)?;
    // Every wire flag takes a value, so the switch is spelled `on`/`off`.
    let share = match flags.opt("share") {
        None => false,
        Some("on") => true,
        Some("off") => false,
        Some(other) => return Err(format!("--share: expected on|off, got `{other}`")),
    };
    let share_cap: usize = flags.num("share-cap", 0)?;
    // Simplification defaults on (matching the CLI); it changes the search
    // trajectory, so the switch joins the cache key below.
    let simplify = match flags.opt("simplify") {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => return Err(format!("--simplify: expected on|off, got `{other}`")),
    };
    let budget = AttackBudget {
        timeout,
        clock: limits.clock.clone(),
        ..AttackBudget::default()
    };
    let mut portfolio = Portfolio::new(k, threads).with_share(share);
    if share_cap > 0 {
        portfolio.share_cap = ShareCap::with_limit(share_cap);
    }
    let spec = AttackSpec::new(strategy)
        .with_budget(budget)
        .with_portfolio(portfolio)
        .with_simplify(simplify);
    // The race strategy is wall-clock nondeterministic: never cache it.
    let cache_key = strategy
        .is_deterministic()
        .then(|| attack_cache_key(&locked, &spec));
    let label = format!("attack {mode} {} {}", locked.netlist.name(), locked.scheme);
    let work: crate::queue::JobWork = Box::new(move |stop: &Arc<AtomicBool>| {
        let mut spec = spec;
        // The job's stop flag becomes the portfolio/solver stop slot: a
        // CANCEL unwinds the attack within one portfolio epoch.
        spec.portfolio.stop = Some(Arc::clone(stop));
        let report = run_attack(&locked, &spec);
        // A budget expiry is a *failed* job, not a result: on a wall
        // clock the verdict is not reproducible (so it must never reach
        // the cache), and callers polling for a verdict should see the
        // same `failed` state either way.
        if report.outcome == AttackOutcome::Timeout {
            return Err(format!(
                "timed out: iters={} bound={}",
                report.iterations, report.bound
            ));
        }
        // No elapsed time on the wire: the cached replay of a result must
        // be byte-identical to the original computation. The sharing
        // ledger totals are deterministic (DETERMINISM.md Rule 7), so the
        // `shared=` field is cache-safe too — but it only appears when
        // sharing is on, keeping share-off result lines unchanged.
        let mut line = format!(
            "verdict={} iters={} bound={} decisive={}",
            report.outcome,
            report.iterations,
            report.bound,
            AttackSpec::is_decisive(&report.outcome)
        );
        if spec.portfolio.share {
            let (exported, imported, dups) = spec.portfolio.share_stats();
            line.push_str(&format!(" shared={exported}/{imported}/{dups}"));
        }
        Ok(line)
    });
    Ok(SubmitRequest {
        label,
        lane: Lane::Batch,
        cache_key,
        work,
    })
}

const VERIFY_FLAGS: &[&str] = &[
    "circuit",
    "scheme",
    "keys",
    "key-bits",
    "ffs",
    "seed",
    "frames",
    "conflicts",
];

fn parse_verify(flags: &Flags) -> Result<SubmitRequest, String> {
    flags.reject_unknown(VERIFY_FLAGS)?;
    let locked = lock_builtin(flags)?;
    let frames: usize = flags.num("frames", 4)?;
    if frames == 0 {
        return Err("--frames must be at least 1".into());
    }
    let conflicts: u64 = flags.num("conflicts", 2_000_000)?;
    let mut fp = Fingerprint::new();
    fp.update_u64(locked.fingerprint());
    fp.update_str("verify");
    fp.update_u64(frames as u64);
    fp.update_u64(conflicts);
    let cache_key = Some(fp.finish());
    let label = format!("verify {} {}", locked.netlist.name(), locked.scheme);
    let work: crate::queue::JobWork = Box::new(move |_stop: &Arc<AtomicBool>| {
        match prove_locked_equivalence(&locked, frames, Some(conflicts)) {
            Ok(EquivResult::Equivalent) => Ok(format!("equivalent frames={frames}")),
            Ok(EquivResult::Counterexample(cex)) => Err(format!(
                "not equivalent: outputs diverge within {} cycle(s)",
                cex.len()
            )),
            Ok(EquivResult::Unknown) => Err(format!("inconclusive within {conflicts} conflicts")),
            Err(e) => Err(e.to_string()),
        }
    });
    Ok(SubmitRequest {
        label,
        lane: Lane::Express,
        cache_key,
        work,
    })
}

/// Encodes the pigeonhole principle `PHP(n)`: `n + 1` pigeons into `n`
/// holes. UNSAT, with only exponential resolution refutations — runtime
/// climbs steeply with `n`, which makes it the daemon's deterministic
/// "long job" for cancellation tests.
fn encode_php(solver: &mut Solver, n: usize) -> Vec<Vec<Lit>> {
    let pigeons = n + 1;
    let var = |p: usize, h: usize| Var::from_index(p * n + h);
    for _ in 0..pigeons * n {
        solver.new_var();
    }
    let mut clauses = Vec::new();
    // Every pigeon sits in some hole.
    for p in 0..pigeons {
        clauses.push((0..n).map(|h| Lit::positive(var(p, h))).collect());
    }
    // No two pigeons share a hole.
    for h in 0..n {
        for p in 0..pigeons {
            for q in (p + 1)..pigeons {
                clauses.push(vec![Lit::negative(var(p, h)), Lit::negative(var(q, h))]);
            }
        }
    }
    for c in &clauses {
        solver.add_clause(c);
    }
    clauses
}

const SOLVE_FLAGS: &[&str] = &["php", "conflicts"];

fn parse_solve(flags: &Flags) -> Result<SubmitRequest, String> {
    flags.reject_unknown(SOLVE_FLAGS)?;
    let n: usize = flags
        .opt("php")
        .ok_or("solve needs --php N")?
        .parse()
        .map_err(|_| "--php: not a valid number".to_string())?;
    if n == 0 || n > 64 {
        return Err("--php must be between 1 and 64".into());
    }
    let conflicts: u64 = flags.num("conflicts", u64::MAX)?;
    let mut fp = Fingerprint::new();
    fp.update_str("solve-php");
    fp.update_u64(n as u64);
    fp.update_u64(conflicts);
    let cache_key = Some(fp.finish());
    let work: crate::queue::JobWork = Box::new(move |stop: &Arc<AtomicBool>| {
        let mut solver = Solver::new();
        encode_php(&mut solver, n);
        if conflicts != u64::MAX {
            solver.set_conflict_budget(Some(conflicts));
        }
        solver.set_stop(Some(Arc::clone(stop)));
        match solver.solve() {
            SatResult::Unsat => Ok(format!("unsat php={n}")),
            SatResult::Sat => Err(format!("php({n}) came out SAT: solver bug")),
            SatResult::Unknown => Err("interrupted".into()),
        }
    });
    Ok(SubmitRequest {
        label: format!("solve php {n}"),
        lane: Lane::Batch,
        cache_key,
        work,
    })
}

/// Parses the operand of a `SUBMIT` line (everything after the verb) into
/// a ready-to-enqueue request.
pub fn parse_submit(line: &str, limits: &Limits) -> Result<SubmitRequest, String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let Some((&kind, rest)) = tokens.split_first() else {
        return Err("SUBMIT needs a job kind: attack | verify | solve".into());
    };
    let flags = Flags::parse(rest)?;
    match kind {
        "attack" => parse_attack(&flags, limits),
        "verify" => parse_verify(&flags),
        "solve" => parse_solve(&flags),
        other => Err(format!("unknown job kind `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    fn submit(line: &str) -> Result<SubmitRequest, String> {
        parse_submit(line, &Limits::default())
    }

    #[test]
    fn attack_requests_parse_and_run() {
        let req = submit("attack --mode sat --scheme xor --key-bits 4 --seed 3").unwrap();
        assert_eq!(req.lane, Lane::Batch);
        assert!(req.cache_key.is_some());
        let stop = Arc::new(AtomicBool::new(false));
        let line = (req.work)(&stop).unwrap();
        assert!(line.contains("verdict=Equal"), "got: {line}");
        assert!(line.contains("decisive=true"), "got: {line}");
    }

    #[test]
    fn race_mode_is_never_cached() {
        let req = submit("attack --mode race").unwrap();
        assert_eq!(req.cache_key, None);
        let det = submit("attack --mode int").unwrap();
        assert!(det.cache_key.is_some());
    }

    #[test]
    fn cache_key_ignores_threads_but_not_strategy_or_seed() {
        let key = |line: &str| submit(line).unwrap().cache_key.unwrap();
        let base = key("attack --mode int --seed 1");
        assert_eq!(
            base,
            key("attack --mode int --seed 1 --threads 4"),
            "worker threads must not change the cache key"
        );
        assert_ne!(base, key("attack --mode kc2 --seed 1"));
        assert_ne!(base, key("attack --mode int --seed 2"));
        assert_ne!(base, key("attack --mode int --seed 1 --portfolio 4"));
    }

    #[test]
    fn cache_key_includes_share_but_not_share_cap() {
        let key = |line: &str| submit(line).unwrap().cache_key.unwrap();
        let base = key("attack --mode int --seed 1 --portfolio 2");
        assert_ne!(
            base,
            key("attack --mode int --seed 1 --portfolio 2 --share on"),
            "the exchange changes the search trajectory, so it must be keyed"
        );
        assert_eq!(
            base,
            key("attack --mode int --seed 1 --portfolio 2 --share off"),
            "--share off is the default"
        );
        let on = key("attack --mode int --seed 1 --portfolio 2 --share on");
        assert_eq!(
            on,
            key("attack --mode int --seed 1 --portfolio 2 --share on --share-cap 32"),
            "the cap is a tuning knob like --threads: out of the key"
        );
    }

    #[test]
    fn cache_key_includes_simplify() {
        let key = |line: &str| submit(line).unwrap().cache_key.unwrap();
        let base = key("attack --mode int --seed 1");
        assert_eq!(
            base,
            key("attack --mode int --seed 1 --simplify on"),
            "--simplify on is the default"
        );
        assert_ne!(
            base,
            key("attack --mode int --seed 1 --simplify off"),
            "simplification changes the search trajectory, so it must be keyed"
        );
    }

    #[test]
    fn simplify_flag_must_be_on_or_off() {
        assert!(submit("attack --mode int --simplify maybe")
            .unwrap_err()
            .contains("on|off"));
    }

    #[test]
    fn simplified_attacks_run_and_verdict_matches_raw() {
        let stop = Arc::new(AtomicBool::new(false));
        let on = submit("attack --mode sat --scheme xor --key-bits 4 --seed 3").unwrap();
        let on_line = (on.work)(&stop).unwrap();
        assert!(on_line.contains("verdict=Equal"), "got: {on_line}");
        let off =
            submit("attack --mode sat --scheme xor --key-bits 4 --seed 3 --simplify off").unwrap();
        let off_line = (off.work)(&stop).unwrap();
        // Same unique key either way; iteration counts may differ.
        assert!(off_line.contains("verdict=Equal"), "got: {off_line}");
    }

    #[test]
    fn share_flag_must_be_on_or_off() {
        assert!(submit("attack --mode int --share maybe")
            .unwrap_err()
            .contains("on|off"));
    }

    #[test]
    fn shared_totals_ride_the_result_line_only_when_sharing() {
        let stop = Arc::new(AtomicBool::new(false));
        let off = submit("attack --mode sat --scheme xor --key-bits 4 --seed 3").unwrap();
        let line = (off.work)(&stop).unwrap();
        assert!(!line.contains("shared="), "got: {line}");
        let on =
            submit("attack --mode sat --scheme xor --key-bits 4 --seed 3 --share on --portfolio 2")
                .unwrap();
        let line = (on.work)(&stop).unwrap();
        assert!(line.contains(" shared="), "got: {line}");
        // Deterministic ledger: a re-run reproduces the line byte-for-byte
        // (this is what makes a cache replay safe).
        let again =
            submit("attack --mode sat --scheme xor --key-bits 4 --seed 3 --share on --portfolio 2")
                .unwrap();
        assert_eq!(line, (again.work)(&stop).unwrap());
    }

    #[test]
    fn verify_requests_are_express_and_run() {
        let req = submit("verify --frames 3").unwrap();
        assert_eq!(req.lane, Lane::Express);
        assert!(req.cache_key.is_some());
        let stop = Arc::new(AtomicBool::new(false));
        let line = (req.work)(&stop).unwrap();
        assert_eq!(line, "equivalent frames=3");
    }

    #[test]
    fn php_jobs_are_unsat_and_cancellable() {
        // Small instance: solves quickly and must come out UNSAT.
        let req = submit("solve --php 4").unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        assert_eq!((req.work)(&stop).unwrap(), "unsat php=4");
        // A pre-raised stop flag interrupts a big instance immediately.
        let req = submit("solve --php 20").unwrap();
        let stop = Arc::new(AtomicBool::new(true));
        stop.store(true, Ordering::Relaxed);
        assert_eq!((req.work)(&stop).unwrap_err(), "interrupted");
    }

    #[test]
    fn bad_lines_are_rejected_with_useful_messages() {
        assert!(submit("").is_err());
        assert!(submit("attack").unwrap_err().contains("--mode"));
        assert!(submit("attack --mode nope").unwrap_err().contains("nope"));
        assert!(submit("attack --mode sat --bogus 1")
            .unwrap_err()
            .contains("--bogus"));
        assert!(submit("solve --php 0").is_err());
        assert!(submit("mystery --x 1").unwrap_err().contains("mystery"));
    }

    #[test]
    fn timeout_is_clamped_to_the_daemon_limit() {
        let limits = Limits {
            max_timeout: Duration::from_secs(5),
            ..Limits::default()
        };
        // Parses fine; the clamp shows up in the cache key being equal to
        // an explicit 5s request.
        let a = parse_submit("attack --mode int --timeout 9999", &limits)
            .unwrap()
            .cache_key;
        let b = parse_submit("attack --mode int --timeout 5", &limits)
            .unwrap()
            .cache_key;
        assert_eq!(a, b);
    }

    #[test]
    fn over_ceiling_attacks_fail_deterministically_on_a_virtual_clock() {
        use cutelock_core::clock::VirtualClock;
        // 1 ms of virtual time per solver conflict. The job asks for 9999 s
        // but the daemon's ceiling clamps it to 5 ms = 5 conflicts, so the
        // deadline fires at an exact point in the search — no wall waiting,
        // no flakiness, identical on any machine.
        let clock = VirtualClock::with_tick(1_000_000);
        let limits = Limits {
            max_timeout: Duration::from_millis(5),
            clock: clock.handle(),
        };
        let req = parse_submit(
            "attack --mode int --scheme str --keys 4 --key-bits 4 --ffs 2 --timeout 9999",
            &limits,
        )
        .unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let err = (req.work)(&stop).unwrap_err();
        assert!(err.starts_with("timed out:"), "got: {err}");
        // The deadline was crossed purely by conflict ticks on the shared
        // virtual clock, never by the host's wall time.
        assert!(
            clock.handle().now().as_nanos() >= 5_000_000,
            "virtual clock never reached the ceiling: {} ns",
            clock.handle().now().as_nanos()
        );
    }
}

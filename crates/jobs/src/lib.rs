//! Job scheduling and the `cutelock serve` daemon.
//!
//! This crate turns the attack pipeline into a long-lived service without
//! changing a line of attack code: every job is an
//! [`AttackSpec`](cutelock_attacks::AttackSpec)-shaped request driven
//! through the same [`run_attack`](cutelock_attacks::run_attack) door the
//! CLI subcommands and the table bins use.
//!
//! Three layers, strictly ordered:
//!
//! * [`queue`] — the **pure scheduler core**: FIFO admission with an
//!   express/batch fairness lane (cheap `verify` jobs are never starved
//!   behind hour-long attacks), per-job stop flags wired into the SAT
//!   solvers' cooperative-cancellation slots (a `CANCEL` on a running
//!   attack unwinds within one portfolio epoch), job lifecycle states
//!   (queued → running → done/cancelled/failed), and an in-memory result
//!   cache keyed by content fingerprint. No sockets, no stdio — it is
//!   unit-tested entirely in-process.
//! * [`request`] — the `SUBMIT` grammar: one line of text into a lane,
//!   a cache key, and a work closure (attacks, equivalence verification,
//!   and pigeonhole SAT instances as deterministic long-running test
//!   jobs).
//! * [`server`] / [`client`] — the thin TCP framing shim: a
//!   `std::net::TcpListener` line protocol (`SUBMIT` / `STATUS` /
//!   `RESULT` / `CANCEL` / `SHUTDOWN`; no async runtime, the build
//!   environment is offline) and the matching blocking client.
//!
//! Determinism contract (see `docs/DETERMINISM.md`): given the same
//! `SUBMIT` line, a job's *result* is a pure function of its spec for
//! every deterministic strategy — which is what makes the result cache
//! sound, and why nondeterministic jobs (`--mode race`) are exempt from
//! caching. Cross-job *completion order* under concurrency is explicitly
//! not deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod queue;
pub mod request;
pub mod server;

pub use client::Client;
pub use queue::{JobQueue, JobState, JobStatus, Lane, SubmitRequest, WorkerPool};
pub use request::{parse_submit, Limits};
pub use server::{ServeConfig, Server};

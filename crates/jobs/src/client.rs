//! A minimal blocking client for the daemon's line protocol: write one
//! line, read one line. Used by `cutelock client`, the serve E2E test,
//! and the CI smoke script.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to a running daemon.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request line and returns the daemon's one response line
    /// (without the trailing newline).
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }
}

#!/usr/bin/env bash
# Docs gate, run by the CI `docs-check` job (and runnable locally):
#
#   1. every relative markdown link in README.md / ROADMAP.md / docs/ /
#      crate READMEs must resolve to a file or directory in the repo
#      (external http(s) links are not fetched — the build environment is
#      offline by design);
#   2. docs/ARCHITECTURE.md must mention every crate directory under
#      crates/ (including the shims), so the architecture walkthrough
#      cannot silently rot as the workspace grows.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# ---- 1. Relative markdown links resolve --------------------------------
# PAPER.md / PAPERS.md / SNIPPETS.md are verbatim source-paper extractions
# (their figure references were never shipped) and are exempt; everything
# authored for this repo is checked.
docs=(README.md ROADMAP.md CHANGES.md)
while IFS= read -r f; do docs+=("$f"); done < <(find docs crates -name '*.md' 2>/dev/null | sort)

for f in "${docs[@]}"; do
  [ -f "$f" ] || continue
  dir=$(dirname "$f")
  # Extract the (target) of every [text](target) link, one per line.
  links=$(grep -oE '\]\([^)[:space:]]+\)' "$f" | sed -e 's/^](//' -e 's/)$//' || true)
  while IFS= read -r target; do
    [ -n "$target" ] || continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path=${target%%#*}          # strip in-page anchors
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "BROKEN LINK in $f: ($target)"
      fail=1
    fi
  done <<< "$links"
done

# ---- 2. ARCHITECTURE.md covers every crate -----------------------------
arch=docs/ARCHITECTURE.md
if [ ! -f "$arch" ]; then
  echo "MISSING $arch"
  fail=1
else
  # Workspace crates must appear by their full `cutelock_<dir>` package
  # name; shims by their bare package name as a whole word. Substring
  # matches on short dir names (sat, sim, cli, core) would be vacuous —
  # "satisfiability" or "multi-core" would satisfy them.
  for d in $(find crates -mindepth 1 -maxdepth 1 -type d ! -name shims); do
    name="cutelock_$(basename "$d")"
    if ! grep -q "$name" "$arch"; then
      echo "docs/ARCHITECTURE.md does not mention crate '$name' ($d)"
      fail=1
    fi
  done
  for d in $(find crates/shims -mindepth 1 -maxdepth 1 -type d 2>/dev/null); do
    name=$(basename "$d")
    if ! grep -qw "$name" "$arch"; then
      echo "docs/ARCHITECTURE.md does not mention shim crate '$name' ($d)"
      fail=1
    fi
  done
fi

if [ "$fail" -ne 0 ]; then
  echo "docs check FAILED"
  exit 1
fi
echo "docs check OK (${#docs[@]} markdown files scanned)"
